"""Cross-stack integration tests.

Every file system (all BetrFS variants and all baselines) is driven
through the same scripted workload and must externalize identical file
contents — the performance models may differ, the semantics may not.
"""

import random

import pytest

from repro.baselines import BASELINES
from repro.betrfs.filesystem import MountOptions
from repro.betrfs.versions import VERSIONS
from repro.harness.runner import make_mount
from repro.workloads.scale import SMOKE_SCALE

ALL_SYSTEMS = sorted(BASELINES) + [v for v in VERSIONS if v != "BetrFS v0.6"]


def scripted_workload(mount, seed=3):
    """A deterministic mixed workload; returns {path: content}."""
    v = mount.vfs
    rng = random.Random(seed)
    model = {}
    v.mkdir("/w")
    for d in range(3):
        v.mkdir(f"/w/d{d}")
    for i in range(40):
        path = f"/w/d{i % 3}/f{i:03d}"
        v.create(path)
        body = bytes([i % 251]) * rng.randint(10, 9000)
        v.write(path, 0, body)
        model[path] = body
    # Overwrites, extensions, small patches.
    for i in range(0, 40, 5):
        path = f"/w/d{i % 3}/f{i:03d}"
        v.write(path, 5, b"PATCH")
        body = model[path]
        if len(body) < 10:
            body = body + b"\x00" * (10 - len(body))
        model[path] = body[:5] + b"PATCH" + body[10:]
    # Deletions.
    for i in range(1, 40, 7):
        path = f"/w/d{i % 3}/f{i:03d}"
        v.unlink(path)
        del model[path]
    # Renames.
    for i in range(2, 40, 11):
        path = f"/w/d{i % 3}/f{i:03d}"
        if path in model:
            dst = path + ".renamed"
            v.rename(path, dst)
            model[dst] = model.pop(path)
    v.sync()
    return model


def read_back(mount, model):
    v = mount.vfs
    got = {}
    for path, body in model.items():
        got[path] = v.read(path, 0, len(body) + 64)
    return got


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_scripted_workload_externalizes_identical_state(system):
    mount = make_mount(system, SMOKE_SCALE)
    model = scripted_workload(mount)
    mount.drop_caches()
    got = read_back(mount, model)
    assert got == model
    # Directory listings agree with the model.
    listed = set()
    for d in range(3):
        for name in mount.vfs.readdir(f"/w/d{d}"):
            listed.add(f"/w/d{d}/{name}")
    assert listed == set(model)


@pytest.mark.parametrize(
    "version", [v for v in VERSIONS if v != "BetrFS v0.6"]
)
def test_betrfs_variants_survive_crash(version):
    """Write through the full stack, crash the device, reboot, verify."""
    from repro.core.env import KVEnv, META
    from repro.core.keys import meta_key
    from repro.kmem.allocator import KernelAllocator
    from repro.model.costs import CostModel
    from repro.storage.ext4sim import Ext4Southbound
    from repro.storage.sfl import SimpleFileLayer

    mount = make_mount(version, SMOKE_SCALE)
    model = scripted_workload(mount)
    mount.vfs.sync()
    image = mount.device.crash_image()
    costs = CostModel()
    if mount.features.use_sfl:
        from repro.check.fsck import fsck_device

        fsck_device(
            image,
            log_size=mount.opts.log_size,
            meta_size=mount.opts.meta_size,
            aligned=mount.config.page_sharing,
        ).raise_if_errors()
        storage = SimpleFileLayer(
            image, costs, log_size=mount.opts.log_size, meta_size=mount.opts.meta_size
        )
    else:
        # The stacked substrate re-allocates its files deterministically
        # in creation order, so KVEnv.open's create() calls land the
        # files at the original offsets.
        storage = Ext4Southbound(image, costs)
    env2 = KVEnv.open(
        storage,
        image.clock,
        costs,
        KernelAllocator(image.clock, costs),
        mount.config,
        log_size=mount.opts.log_size,
        meta_size=mount.opts.meta_size,
        data_size=mount.opts.data_size,
        log_page_values=not mount.features.use_sfl,
    )
    for path in model:
        assert env2.get(META, meta_key(path)) is not None, path


def test_bytes_conserved_across_layers():
    """What each layer reports writing must equal what the layer below
    received: WAL == log file, trees == node files, and the device's
    (pre-sector-rounding) total == the sum over southbound files."""
    mount = make_mount("BetrFS v0.6", SMOKE_SCALE)
    scripted_workload(mount)
    mount.env.checkpoint()  # force node write-back so trees report bytes
    env, storage, device = mount.env, mount.storage, mount.device

    assert env.wal.bytes_flushed == storage.file_bytes_written["log"]
    tree_bytes = sum(t.stats.bytes_node_written for t in env.trees)
    assert tree_bytes > 0
    assert tree_bytes == (
        storage.file_bytes_written["meta.db"]
        + storage.file_bytes_written["data.db"]
    )
    assert device.stats.raw_bytes_written == sum(
        storage.file_bytes_written.values()
    )
    # Sector rounding only ever adds bytes.
    assert device.stats.bytes_written >= device.stats.raw_bytes_written


def test_simulated_time_accumulates_everywhere():
    for system in ("ext4", "BetrFS v0.6"):
        mount = make_mount(system, SMOKE_SCALE)
        scripted_workload(mount)
        assert mount.clock.now > 0
        assert mount.device.stats.bytes_written > 0
