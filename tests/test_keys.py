"""Unit and property tests for key encoding and prefix ranges."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import keys


class TestKeyConstruction:
    def test_meta_key(self):
        assert keys.meta_key("/a/b") == b"/a/b"

    def test_data_key_sorts_by_block(self):
        k1 = keys.data_key("/f", 1)
        k2 = keys.data_key("/f", 2)
        k300 = keys.data_key("/f", 300)
        assert k1 < k2 < k300

    def test_data_key_roundtrip(self):
        k = keys.data_key("/some/path", 77)
        assert keys.data_key_block(k) == 77
        assert keys.data_key_path(k) == "/some/path"

    def test_file_blocks_between_meta_entries(self):
        """(path, block) tuples never collide with other paths."""
        k = keys.data_key("/a/b", 0)
        assert keys.meta_key("/a/b") < k < keys.meta_key("/a/b!")


class TestPrefixRanges:
    def test_successor_simple(self):
        assert keys.prefix_successor(b"/a/") == b"/a0"

    def test_successor_trailing_ff(self):
        assert keys.prefix_successor(b"/a\xff") == b"/b"

    def test_subtree_range_covers_descendants(self):
        lo, hi = keys.dir_subtree_range("/a/b")
        assert lo <= keys.meta_key("/a/b/c") < hi
        assert lo <= keys.meta_key("/a/b/c/d/e") < hi

    def test_subtree_range_excludes_dir_itself_and_siblings(self):
        lo, hi = keys.dir_subtree_range("/a/b")
        assert not (lo <= keys.meta_key("/a/b") < hi)
        assert not (lo <= keys.meta_key("/a/bz") < hi)
        assert not (lo <= keys.meta_key("/a/c") < hi)

    def test_file_blocks_range(self):
        lo, hi = keys.file_blocks_range("/f")
        for block in (0, 1, 1000, 2**31):
            assert lo <= keys.data_key("/f", block) < hi
        assert not (lo <= keys.data_key("/f2", 0) < hi)

    def test_is_direct_child(self):
        assert keys.is_direct_child("/a", "/a/b")
        assert not keys.is_direct_child("/a", "/a/b/c")
        assert not keys.is_direct_child("/a", "/ab")
        assert keys.is_direct_child("/", "/x")  # root's children


class TestRangeHelpers:
    def test_in_range(self):
        assert keys.in_range(b"b", b"a", b"c")
        assert not keys.in_range(b"c", b"a", b"c")
        assert keys.in_range(b"z", b"a", None)

    def test_overlap_and_cover(self):
        assert keys.ranges_overlap(b"a", b"c", b"b", b"d")
        assert not keys.ranges_overlap(b"a", b"b", b"b", b"c")
        assert keys.range_covers(b"a", b"z", b"b", b"c")
        assert not keys.range_covers(b"b", b"c", b"a", b"z")

    def test_common_prefix(self):
        assert keys.common_prefix(b"/a/b", b"/a/c") == b"/a/"
        assert keys.common_prefix_of([b"/x/1", b"/x/2", b"/x/3"]) == b"/x/"
        assert keys.common_prefix_of([]) == b""


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
printable_path = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="/"),
    min_size=1,
    max_size=8,
)


@given(st.binary(min_size=1, max_size=16))
def test_prefix_successor_is_upper_bound(prefix):
    succ = keys.prefix_successor(prefix)
    assert succ > prefix
    # Anything with this prefix sorts strictly below the successor.
    assert prefix + b"\xff" * 4 < succ or succ.startswith(prefix) is False


@given(st.binary(min_size=1, max_size=12), st.binary(min_size=0, max_size=6))
def test_prefix_range_contains_exactly_prefixed_keys(prefix, suffix):
    lo, hi = keys.prefix_range(prefix)
    key = prefix + suffix
    assert lo <= key < hi


@given(st.lists(printable_path, min_size=1, max_size=4), printable_path)
def test_subtree_range_property(components, extra):
    path = "/" + "/".join(components)
    lo, hi = keys.dir_subtree_range(path)
    child = path + "/" + extra
    assert lo <= keys.meta_key(child) < hi
    sibling = path + "0"  # '0' > '/' so it sorts outside the subtree
    assert not (lo <= keys.meta_key(sibling) < hi)


@given(st.lists(st.binary(min_size=1, max_size=10), min_size=1, max_size=20))
def test_common_prefix_of_is_common(keys_list):
    prefix = keys.common_prefix_of(keys_list)
    assert all(k.startswith(prefix) for k in keys_list)
