"""Tests for the BetrFS northbound layer (schema + optimizations)."""

import pytest

from repro.betrfs import make_betrfs
from repro.betrfs.filesystem import MountOptions
from repro.core.env import DATA, META
from repro.core.keys import data_key, meta_key
from repro.core.messages import value_bytes
from repro.vfs.inode import FileKind, Stat

OPTS = MountOptions(scale=1 / 32)


def mount(version="BetrFS v0.6"):
    return make_betrfs(version, OPTS)


class TestSchema:
    def test_meta_index_holds_packed_stats(self):
        fs = mount("BetrFS v0.4")  # no conditional logging: direct insert
        fs.vfs.mkdir("/d")
        raw = fs.env.get(META, meta_key("/d"))
        st = Stat.unpack(value_bytes(raw))
        assert st.kind is FileKind.DIR

    def test_data_index_holds_blocks_by_path(self):
        fs = mount("BetrFS v0.4")
        fs.vfs.create("/f")
        fs.vfs.write("/f", 0, b"A" * 4096 + b"B" * 4096)
        fs.vfs.fsync("/f")
        b0 = fs.env.get(DATA, data_key("/f", 0))
        b1 = fs.env.get(DATA, data_key("/f", 1))
        assert value_bytes(b0)[:4] == b"AAAA"
        assert value_bytes(b1)[:4] == b"BBBB"

    def test_unlink_issues_range_delete(self):
        fs = mount("BetrFS v0.4")
        fs.vfs.create("/f")
        fs.vfs.write("/f", 0, b"x" * 8192)
        fs.vfs.fsync("/f")
        before = fs.env.data.stats.range_deletes
        fs.vfs.unlink("/f")
        assert fs.env.data.stats.range_deletes > before
        assert fs.env.get(DATA, data_key("/f", 0)) is None


class TestRedundantDeleteElision:
    def test_v04_issues_redundant_delete(self):
        fs = mount("BetrFS v0.4")
        fs.vfs.create("/f")
        fs.vfs.write("/f", 0, b"x" * 4096)
        fs.vfs.fsync("/f")
        before = fs.env.data.stats.range_deletes
        fs.vfs.unlink("/f")
        # unlink + evict_inode both fire a range delete in v0.4.
        assert fs.env.data.stats.range_deletes == before + 2

    def test_rg_elides_redundant_delete(self):
        fs = mount("+RG")
        fs.vfs.create("/f")
        fs.vfs.write("/f", 0, b"x" * 4096)
        fs.vfs.fsync("/f")
        before = fs.env.data.stats.range_deletes
        fs.vfs.unlink("/f")
        assert fs.env.data.stats.range_deletes == before + 1


class TestRmdirCoalescing:
    def test_rg_rmdir_issues_directory_range_delete(self):
        fs = mount("+RG")
        fs.vfs.mkdir("/d")
        before = fs.env.meta.stats.range_deletes
        fs.vfs.rmdir("/d")
        assert fs.env.meta.stats.range_deletes > before

    def test_v04_rmdir_queries_for_emptiness(self):
        fs = mount("BetrFS v0.4")
        fs.vfs.mkdir("/d")
        before = fs.env.meta.stats.range_queries
        fs.vfs.rmdir("/d")
        assert fs.env.meta.stats.range_queries > before

    def test_v06_rmdir_uses_cached_nlink(self):
        fs = mount("BetrFS v0.6")
        fs.vfs.mkdir("/d")
        fs.vfs.create("/d/f")
        fs.vfs.unlink("/d/f")
        before = fs.env.meta.stats.range_queries
        fs.vfs.rmdir("/d")  # children_count is tracked: no query
        assert fs.env.meta.stats.range_queries == before


class TestReaddir:
    def test_skips_subtrees(self):
        fs = mount("BetrFS v0.4")
        v = fs.vfs
        v.mkdir("/top")
        v.mkdir("/top/sub")
        for i in range(50):
            v.create(f"/top/sub/f{i:02d}")
        v.create("/top/zfile")
        names = v.readdir("/top")
        assert names == ["sub", "zfile"]

    def test_dc_populates_inode_cache(self):
        fs = mount("+DC")
        v = fs.vfs
        v.mkdir("/d")
        for i in range(10):
            v.create(f"/d/f{i}")
        v.sync()
        fs.drop_caches()
        v.readdir("/d")
        before = fs.env.meta.stats.queries
        for i in range(10):
            v.stat(f"/d/f{i}")  # all served from the dcache
        assert fs.env.meta.stats.queries == before

    def test_without_dc_lookups_hit_the_tree(self):
        fs = mount("+PGSH")  # one step before +DC
        v = fs.vfs
        v.mkdir("/d")
        for i in range(10):
            v.create(f"/d/f{i}")
        v.sync()
        fs.drop_caches()
        v.readdir("/d")
        before = fs.env.meta.stats.queries
        for i in range(10):
            v.stat(f"/d/f{i}")
        assert fs.env.meta.stats.queries >= before + 10


class TestRename:
    def test_file_rename_moves_blocks(self):
        fs = mount()
        v = fs.vfs
        v.create("/a")
        v.write("/a", 0, b"R" * 10000)
        v.fsync("/a")
        v.rename("/a", "/b")
        v.sync()
        fs.drop_caches()
        assert v.read("/b", 0, 10000) == b"R" * 10000
        assert fs.env.get(DATA, data_key("/a", 0)) is None

    def test_dir_rename_rewrites_prefixes(self):
        fs = mount()
        v = fs.vfs
        v.mkdir("/olddir")
        v.create("/olddir/f")
        v.write("/olddir/f", 0, b"zz" * 3000)
        v.rename("/olddir", "/newdir")
        v.sync()
        fs.drop_caches()
        assert v.read("/newdir/f", 0, 6000) == b"zz" * 3000
        assert not v.exists("/olddir/f")
        assert not v.exists("/olddir")


class TestTreeReadahead:
    def test_sfl_variants_prefetch_on_sequential_reads(self):
        fs = mount("BetrFS v0.6")
        v = fs.vfs
        v.create("/big")
        v.write("/big", 0, b"D" * (2 << 20))
        v.sync()
        fs.drop_caches()
        v.read("/big", 0, 2 << 20)
        assert fs.env.data.stats.readahead_issued > 0
        assert fs.env.data.stats.readahead_hits > 0

    def test_v04_never_prefetches_in_tree(self):
        fs = mount("BetrFS v0.4")
        v = fs.vfs
        v.create("/big")
        v.write("/big", 0, b"D" * (2 << 20))
        v.sync()
        fs.drop_caches()
        v.read("/big", 0, 2 << 20)
        assert fs.env.data.stats.readahead_issued == 0
