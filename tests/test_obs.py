"""Unit tests for the observability subsystem (repro.obs)."""

import json
import math

from repro.device.clock import SimClock
from repro.harness.runner import make_mount
from repro.obs import MountScope, Observability, session
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.workloads.scale import SMOKE_SCALE


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_counter_get_or_create_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("ops", layer="vfs")
    b = reg.counter("ops", layer="vfs")
    c = reg.counter("ops", layer="tree")
    assert a is b
    assert a is not c
    a.inc()
    a.inc(4)
    assert a.value == 5
    assert c.value == 0
    assert reg.find("ops", layer="vfs") is a


def test_gauge_callback():
    reg = MetricsRegistry()
    box = {"v": 0}
    g = reg.gauge("depth", layer="tree", fn=lambda: box["v"])
    box["v"] = 7
    assert g.value == 7
    assert g.snapshot()["value"] == 7


def test_latency_percentiles_on_known_distribution():
    h = Histogram.latency("lat")
    # 100 samples spread uniformly over [1ms, 100ms].
    samples = [i * 1e-3 for i in range(1, 101)]
    for s in samples:
        h.observe(s)
    assert h.count == 100
    assert math.isclose(h.sum, sum(samples))
    p50 = h.percentile(50)
    p95 = h.percentile(95)
    p99 = h.percentile(99)
    # Interpolated estimates must land within the containing bucket
    # (1-2-5 series), i.e. within a factor ~2.5 of the true value, and
    # be ordered.
    assert 0.02 <= p50 <= 0.1
    assert 0.05 <= p95 <= 0.1
    assert p50 <= p95 <= p99 <= 0.1
    # Clamped to the observed extremes.
    assert h.percentile(0) >= h.min
    assert h.percentile(100) == h.max


def test_latency_percentile_single_value():
    h = Histogram.latency("lat")
    h.observe(0.003)
    for q in (50, 95, 99):
        assert h.percentile(q) == 0.003
    empty = Histogram.latency("empty")
    assert empty.percentile(50) is None


def test_log2_histogram_bucketing():
    h = Histogram.log2("sizes")
    for v in (3, 4, 5):
        h.observe(v)
    # Bucket b covers (b/2, b]: 3 and 4 land in 4; 5 lands in 8.
    assert dict(h.buckets()) == {4: 2, 8: 1}
    assert h.min == 3 and h.max == 5


def test_object_snapshot_registration():
    class Stats:
        def __init__(self):
            self.hits = 3
            self.misses = 1
            self.ratio = 0.75
            self.name = "not numeric"
            self._private = 9

    reg = MetricsRegistry()
    reg.register_object("cache", Stats(), layer="cache")
    snap = reg.collect()["objects"]["cache"]
    assert snap["hits"] == 3 and snap["misses"] == 1
    assert snap["ratio"] == 0.75
    assert "name" not in snap and "_private" not in snap
    assert snap["_layer"] == "cache"


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_span_nesting_and_durations():
    clock = SimClock()
    tracer = SpanTracer(clock)
    outer = tracer.begin("vfs.write", "vfs")
    clock.cpu(0.001)
    inner = tracer.begin("tree.flush", "tree")
    clock.cpu(0.002)
    tracer.end(inner)
    clock.cpu(0.003)
    tracer.end(outer, bytes=4096)

    assert len(tracer.spans) == 2
    inner_s, outer_s = tracer.spans
    assert inner_s.depth == 1 and outer_s.depth == 0
    assert inner_s.path == "vfs.write;tree.flush"
    assert outer_s.path == "vfs.write"
    assert math.isclose(inner_s.duration, 0.002)
    assert math.isclose(outer_s.duration, 0.006)
    assert math.isclose(outer_s.cpu, 0.006)
    assert outer_s.args == {"bytes": 4096}


def test_span_context_manager_and_flame_summary():
    clock = SimClock()
    tracer = SpanTracer(clock)
    for _ in range(3):
        with tracer.span("op", "test"):
            clock.cpu(0.01)
            with tracer.span("child", "test"):
                clock.cpu(0.02)
    text = tracer.flame_summary()
    assert "op;child" in text
    lines = {ln.split()[-1]: ln.split() for ln in text.splitlines()[1:]}
    assert lines["op"][0] == "3"
    # Parent self time excludes the child's duration.
    assert math.isclose(float(lines["op"][2]), 0.03, abs_tol=1e-9)
    assert math.isclose(float(lines["op;child"][1]), 0.06, abs_tol=1e-9)


def test_chrome_trace_json_roundtrip():
    clock = SimClock()
    tracer = SpanTracer(clock)
    with tracer.span("vfs.read", "vfs"):
        clock.cpu(0.001)
    tracer.event("dev.read", "device", 0.0, 0.0005, bytes=4096)
    events = tracer.chrome_events(pid=3)
    doc = json.loads(json.dumps({"traceEvents": events}))
    assert len(doc["traceEvents"]) == 2
    for e in doc["traceEvents"]:
        assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
        assert e["ph"] == "X"
        assert e["pid"] == 3
    by_name = {e["name"]: e for e in doc["traceEvents"]}
    # ts/dur are microseconds of simulated time.
    assert math.isclose(by_name["vfs.read"]["dur"], 1000.0)
    assert by_name["vfs.read"]["tid"] == 0
    assert by_name["dev.read"]["tid"] == 1
    assert by_name["dev.read"]["args"]["bytes"] == 4096


def test_tracer_drops_past_max_events():
    clock = SimClock()
    tracer = SpanTracer(clock, max_events=2)
    for _ in range(5):
        with tracer.span("op", "t"):
            pass
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3
    assert "dropped 3" in tracer.flame_summary()


# ----------------------------------------------------------------------
# Wiring: no-op default, session collection
# ----------------------------------------------------------------------
def test_default_mount_tracer_is_noop():
    mount = make_mount("BetrFS v0.6", SMOKE_SCALE)
    assert mount.obs.tracer is NULL_TRACER
    assert mount.obs.tracer.enabled is False
    # The no-op tracer records nothing through the full surface.
    span = mount.obs.tracer.begin("x", "y")
    mount.obs.tracer.end(span)
    with mount.obs.tracer.span("x", "y") as sp:
        assert sp is None


def test_session_collects_mounts_and_traces():
    obs = Observability(tracing=True)
    with session(obs):
        mount = make_mount("BetrFS v0.6", SMOKE_SCALE)
        mount.vfs.create("/f")
        mount.vfs.write("/f", 0, b"x" * 8192)
        mount.vfs.sync()
    assert [s.name for s in obs.scopes] == ["BetrFS v0.6"]
    assert mount.obs is obs.scopes[0]
    assert isinstance(mount.obs.tracer, SpanTracer)
    doc = obs.chrome_trace()
    names = {e["name"] for e in doc["traceEvents"]}
    assert "vfs.write" in names
    assert "process_name" in names  # metadata events present
    metrics = obs.metrics()
    assert metrics["mounts"][0]["mount"] == "BetrFS v0.6"
    assert "device.io" in metrics["mounts"][0]["objects"]
    # Mounts created outside the session get standalone scopes.
    outside = make_mount("ext4", SMOKE_SCALE)
    assert outside.obs not in obs.scopes
    assert outside.obs.tracer is NULL_TRACER


def test_scope_stats_render():
    scope = MountScope("m", SimClock())
    hist = scope.latency("vfs.read_latency", layer="vfs")
    hist.observe(0.001)
    text = scope.render_stats()
    assert "vfs.read_latency" in text
    assert "m" in text


# ----------------------------------------------------------------------
# Dual-clock spans + overhead map (PR 6)
# ----------------------------------------------------------------------
def _fake_wall():
    """Deterministic wall-clock stub: +1000 ns per read."""
    state = {"t": 0}

    def read():
        state["t"] += 1000
        return state["t"]

    return read


def test_dual_clock_spans_record_wall_ns():
    clock = SimClock()
    tracer = SpanTracer(clock, wall_clock=_fake_wall())
    outer = tracer.begin("vfs.write", "vfs")
    clock.cpu(0.001)
    inner = tracer.begin("tree.flush", "tree")
    clock.cpu(0.002)
    tracer.end(inner)
    tracer.end(outer)
    inner_s, outer_s = tracer.spans
    # Fake clock: begin/end reads are 1000 ns apart per intervening read.
    assert inner_s.wall_ns == 1000
    assert outer_s.wall_ns == 3000
    # The parent accumulated its child's totals on both clocks.
    assert outer_s.child_wall == inner_s.wall_ns
    assert math.isclose(outer_s.child_sim, inner_s.duration)
    # Chrome export carries the wall duration alongside sim time.
    args = {e["name"]: e["args"] for e in tracer.chrome_events()}
    assert args["vfs.write"]["wall_us"] == 3.0


def test_spans_without_wall_clock_have_no_wall_fields():
    clock = SimClock()
    tracer = SpanTracer(clock)
    with tracer.span("op", "vfs"):
        clock.cpu(0.001)
    [span] = tracer.spans
    assert span.wall_ns == -1
    args = [e["args"] for e in tracer.chrome_events()]
    assert "wall_us" not in args[0]


def test_overhead_rows_partition_self_time_by_layer():
    from repro.obs.report import overhead_rows

    clock = SimClock()
    tracer = SpanTracer(clock, wall_clock=_fake_wall())
    for _ in range(3):
        with tracer.span("vfs.write", "vfs"):
            clock.cpu(0.010)
            with tracer.span("tree.flush", "tree"):
                clock.cpu(0.020)
    rows = {r["layer"]: r for r in overhead_rows(tracer)}
    assert set(rows) == {"vfs", "tree"}
    assert rows["vfs"]["spans"] == 3 and rows["tree"]["spans"] == 3
    # Self sim time: parent excludes the nested child's 20 ms.
    assert math.isclose(rows["vfs"]["sim_self_s"], 0.030, abs_tol=1e-9)
    assert math.isclose(rows["tree"]["sim_self_s"], 0.060, abs_tol=1e-9)
    # Wall self time partitions the same way on the fake clock.
    assert rows["vfs"]["wall_self_s"] > 0
    assert rows["tree"]["wall_self_s"] > 0
    assert rows["vfs"]["wall_per_sim"] is not None


def test_overhead_map_renders_for_wall_session():
    obs = Observability(wall=True)
    with session(obs):
        mount = make_mount("BetrFS v0.6", SMOKE_SCALE)
        mount.vfs.create("/f")
        mount.vfs.write("/f", 0, b"x" * 65536)
        mount.vfs.sync()
    assert obs.tracing  # wall implies tracing
    text = obs.render_overhead()
    assert "sim-vs-wall overhead map" in text
    assert "vfs" in text
    assert "total" in text
    # Spans carry real wall stamps under a wall session.
    tracer = obs.scopes[0].tracer
    assert any(s.wall_ns >= 0 for s in tracer.spans)


def test_overhead_map_empty_without_dual_clock():
    scope = MountScope("m", SimClock())
    from repro.obs.report import render_overhead

    assert "no dual-clock spans" in render_overhead(scope)


# ----------------------------------------------------------------------
# Purity: profiling and dual-clock observation change nothing simulated
# ----------------------------------------------------------------------
def _device_state_hash(mount):
    import hashlib

    h = hashlib.sha256()
    for off, data in mount.device.store.snapshot():
        h.update(off.to_bytes(8, "little"))
        h.update(data)
    return h.hexdigest()


def _observed_workload(wall: bool, profile: bool):
    """tokubench under (optional) dual-clock tracing and profiling."""
    from repro.obs.prof import WallProfiler
    from repro.workloads.tokubench import tokubench

    def run():
        mount = make_mount("BetrFS v0.6", SMOKE_SCALE)
        tokubench(mount, SMOKE_SCALE)
        mount.sync()
        return mount

    if profile:
        prof = WallProfiler()
        with prof:
            if wall:
                with session(Observability(wall=True)):
                    mount = run()
            else:
                mount = run()
        assert prof.layer_table()  # captured something
    elif wall:
        with session(Observability(wall=True)):
            mount = run()
    else:
        mount = run()
    return _device_state_hash(mount), mount.clock.now


def test_dual_clock_spans_are_pure_observers():
    """Acceptance: wall-profiled spans change neither device bytes nor
    simulated time."""
    base_hash, base_now = _observed_workload(wall=False, profile=False)
    wall_hash, wall_now = _observed_workload(wall=True, profile=False)
    assert base_hash == wall_hash
    assert base_now == wall_now


def test_cprofile_capture_is_a_pure_observer():
    """Acceptance: cProfile capture changes neither device bytes nor
    simulated time (wall time, sure — simulation, never)."""
    base_hash, base_now = _observed_workload(wall=False, profile=False)
    prof_hash, prof_now = _observed_workload(wall=False, profile=True)
    both_hash, both_now = _observed_workload(wall=True, profile=True)
    assert base_hash == prof_hash == both_hash
    assert base_now == prof_now == both_now
