"""Tests for ``repro.sched``: the deterministic multi-tenant scheduler.

Covers the PR's acceptance criteria:

* two same-seed multi-tenant runs are byte-identical (summary JSON,
  device sha256, simulated clock, per-session percentiles);
* a one-session scheduled run reproduces the sequential mailserver
  bit for bit (device image, simulated time, throughput);
* session locks hand off FIFO, reject re-acquire/foreign release, and
  a workload that can only deadlock is detected, not spun on;
* policies are pure functions of (ready set, state, seeded RNG);
* fairness math (Jain's index, max-wait) and the per-session
  latency/block accounting;
* the 64-session configuration from the issue completes and reports.
"""

import json
import random

import pytest

from repro.betrfs.filesystem import make_betrfs
from repro.check.errors import SchedInvariantError
from repro.harness.mt import device_sha256, run_mt, to_json
from repro.sched import (
    BLOCK_KINDS,
    Blocked,
    FSYNC,
    LOCK_WAIT,
    LockTable,
    Scheduler,
    SessionLock,
    make_policy,
    policy_names,
)
from repro.sched.policy import FIFOPolicy, LotteryPolicy, RoundRobinPolicy
from repro.sched.sched import Scheduler as SchedulerClass
from repro.workloads.mailserver import mailserver
from repro.workloads.mailserver_mt import mailserver_mt
from repro.workloads.scale import SMOKE_SCALE


# ----------------------------------------------------------------------
# Locks
# ----------------------------------------------------------------------
class TestSessionLock:
    def test_uncontended_take_and_release(self):
        lock = SessionLock("k")
        assert lock.try_take(1)
        assert lock.owner == 1
        assert lock.release(1) is None
        assert lock.owner is None
        assert lock.acquisitions == 1
        assert lock.contentions == 0

    def test_fifo_handoff_order(self):
        lock = SessionLock("k")
        assert lock.try_take(0)
        for sid in (3, 1, 2):  # enqueue order, NOT sid order
            assert not lock.try_take(sid)
            lock.enqueue(sid)
        assert lock.release(0) == 3  # direct handoff to head waiter
        assert lock.owner == 3
        assert lock.release(3) == 1
        assert lock.release(1) == 2
        assert lock.release(2) is None
        assert lock.contentions == 3
        assert lock.acquisitions == 4

    def test_reacquire_is_an_invariant_error(self):
        lock = SessionLock("k")
        lock.try_take(5)
        with pytest.raises(SchedInvariantError):
            lock.try_take(5)

    def test_release_by_non_owner_rejected(self):
        lock = SessionLock("k")
        lock.try_take(1)
        with pytest.raises(SchedInvariantError):
            lock.release(2)

    def test_double_enqueue_rejected(self):
        lock = SessionLock("k")
        lock.try_take(0)
        lock.enqueue(1)
        with pytest.raises(SchedInvariantError):
            lock.enqueue(1)

    def test_table_held_by_and_totals(self):
        table = LockTable()
        table.get("b").try_take(7)
        table.get("a").try_take(7)
        table.get("c").try_take(2)
        assert table.held_by(7) == ["a", "b"]
        assert table.acquisitions == 3
        assert table.contentions == 0


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class _FakeSession:
    def __init__(self, sid, runnable_since=0.0):
        self.sid = sid
        self.runnable_since = runnable_since


class TestPolicies:
    def test_registry(self):
        assert policy_names() == ["fifo", "lottery", "rr"]
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        assert isinstance(make_policy("rr"), RoundRobinPolicy)
        assert isinstance(make_policy("lottery"), LotteryPolicy)
        with pytest.raises(KeyError):
            make_policy("cfs")

    def test_fifo_longest_runnable_ties_to_lowest_sid(self):
        ready = [
            _FakeSession(0, 5.0),
            _FakeSession(1, 2.0),
            _FakeSession(2, 2.0),
        ]
        pick = FIFOPolicy().pick(ready, random.Random(0))
        assert pick.sid == 1

    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy()
        ready = [_FakeSession(i) for i in range(3)]
        rng = random.Random(0)
        order = [policy.pick(ready, rng).sid for _ in range(6)]
        assert order == [0, 1, 2, 0, 1, 2]

    def test_lottery_is_seeded_and_weighted(self):
        ready = [_FakeSession(0), _FakeSession(1)]
        a, b = LotteryPolicy(), LotteryPolicy()
        picks_a = [a.pick(ready, random.Random(42)).sid for _ in range(1)]
        picks_b = [b.pick(ready, random.Random(42)).sid for _ in range(1)]
        assert picks_a == picks_b  # same seed, same draw
        heavy = LotteryPolicy()
        heavy.set_tickets({0: 1, 1: 999})
        rng = random.Random(7)
        wins = sum(heavy.pick(ready, rng).sid for _ in range(50))
        assert wins >= 45  # session 1 holds ~99.9% of the tickets


# ----------------------------------------------------------------------
# Scheduler mechanics on a synthetic mount
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def cpu(self, seconds):
        self.now += seconds


class _FakeCosts:
    context_switch = 1.0e-6


class _FakeMount:
    def __init__(self):
        self.clock = _FakeClock()
        self.costs = _FakeCosts()


class TestSchedulerMechanics:
    def test_jain_index_math(self):
        assert SchedulerClass._jain([]) == 1.0
        assert SchedulerClass._jain([0.0, 0.0]) == 1.0
        assert SchedulerClass._jain([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        # One session got everything: 1/n.
        assert SchedulerClass._jain([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_single_session_never_charges_switches(self):
        mount = _FakeMount()
        sched = Scheduler(mount, seed=3)

        def script(ctx):
            for _ in range(5):
                yield from ctx.run(mount.clock.cpu, 1.0)
                ctx.op_done()

        sched.spawn("solo", script)
        sched.run()
        assert sched.switches == 0
        assert mount.clock.now == pytest.approx(5.0)
        assert sched.sessions[0].ops == 5

    def test_lock_deadlock_is_detected_not_spun(self):
        mount = _FakeMount()
        sched = Scheduler(mount, seed=0)

        def grab_forever(key):
            def script(ctx):
                yield from ctx.acquire(key)
                mount.clock.cpu(1.0)
                yield Blocked(FSYNC)  # suspend so the peer can run
                # Break the sorted-order discipline on purpose: the
                # second acquire can never be granted.
                other = "b" if key == "a" else "a"
                yield from ctx.acquire(other)

            return script

        sched.spawn("s0", grab_forever("a"))
        sched.spawn("s1", grab_forever("b"))
        with pytest.raises(SchedInvariantError, match="stalled"):
            sched.run()

    def test_finishing_with_held_lock_rejected(self):
        mount = _FakeMount()
        sched = Scheduler(mount, seed=0)

        def leaky(ctx):
            yield from ctx.acquire("k")
            yield Blocked(FSYNC)

        sched.spawn("leaky", leaky)
        with pytest.raises(SchedInvariantError, match="holding locks"):
            sched.run()

    def test_contended_lock_fifo_and_wait_accounting(self):
        mount = _FakeMount()
        sched = Scheduler(mount, seed=1)
        order = []

        def worker(name):
            def script(ctx):
                yield from ctx.acquire("shared")
                mount.clock.cpu(1.0)
                yield Blocked(FSYNC)  # suspend while holding the lock
                order.append(name)
                ctx.release("shared")
                ctx.op_done()

            return script

        for i in range(3):
            sched.spawn(f"w{i}", worker(f"w{i}"))
        sched.run()
        assert order == ["w0", "w1", "w2"]  # FIFO enqueue order
        assert sched.locks.contentions == 2
        assert sched.max_wait() > 0.0
        # Blocked-on-lock sessions recorded the lock_wait kind.
        totals = sched.block_totals()
        assert totals.get(LOCK_WAIT) == 2


# ----------------------------------------------------------------------
# End-to-end: the multi-tenant mailserver
# ----------------------------------------------------------------------
class TestMailserverMT:
    def test_same_seed_runs_byte_identical(self):
        a = run_mt(SMOKE_SCALE, sessions=4, seed=7)
        b = run_mt(SMOKE_SCALE, sessions=4, seed=7)
        assert to_json(a) == to_json(b)
        assert a["device_sha256"] == b["device_sha256"]
        assert a["sim_seconds"] == b["sim_seconds"]
        assert a["per_session"] == b["per_session"]

    def test_different_seed_differs(self):
        a = run_mt(SMOKE_SCALE, sessions=4, seed=7)
        b = run_mt(SMOKE_SCALE, sessions=4, seed=8)
        assert a["device_sha256"] != b["device_sha256"]

    def test_single_session_matches_sequential_bit_for_bit(self):
        fs_seq = make_betrfs("BetrFS v0.6")
        throughput = mailserver(fs_seq, SMOKE_SCALE, seed=11)
        fs_mt = make_betrfs("BetrFS v0.6")
        sched = mailserver_mt(
            fs_mt,
            SMOKE_SCALE,
            sessions=1,
            seed=11,
            ops_per_session=SMOKE_SCALE.mail_ops,
        )
        assert fs_mt.clock.now == fs_seq.clock.now
        assert device_sha256(fs_mt.device) == device_sha256(fs_seq.device)
        mt_throughput = sched.total_ops() / (fs_mt.clock.now - sched.started)
        assert mt_throughput == throughput
        assert sched.switches == 0

    def test_summary_shape_and_blocks(self):
        summary = run_mt(SMOKE_SCALE, sessions=4, seed=7)
        assert summary["schema"] == "repro-mt v3"
        assert summary["sessions"] == 4
        assert len(summary["per_session"]) == 4
        assert summary["ops"] > 0
        assert set(summary["blocks"]) <= set(BLOCK_KINDS)
        # A contended multi-tenant mail mix must actually block: on
        # durability barriers and on folder locks at minimum.
        assert summary["blocks"].get("fsync", 0) > 0
        assert summary["blocks"].get("journal_commit", 0) > 0
        assert summary["blocks"].get("lock_wait", 0) > 0
        assert summary["locks"]["contentions"] > 0
        fair = summary["fairness"]
        assert 0.0 < fair["jain_service"] <= 1.0
        assert 0.0 < fair["jain_ops"] <= 1.0
        assert fair["max_wait_seconds"] > 0.0
        for sess in summary["per_session"]:
            assert sess["ops"] > 0
            assert sess["p99_seconds"] >= sess["p50_seconds"] > 0.0
        # The canonical JSON rendering round-trips.
        assert json.loads(to_json(summary)) == json.loads(to_json(summary))

    def test_policies_complete_and_diverge(self):
        fifo = run_mt(SMOKE_SCALE, sessions=4, seed=7, policy="fifo")
        lottery = run_mt(SMOKE_SCALE, sessions=4, seed=7, policy="lottery")
        assert fifo["ops"] == lottery["ops"]
        # Different interleavings reach different device images (moves
        # allocate ids in dispatch order) or at least different clocks.
        assert (
            fifo["device_sha256"] != lottery["device_sha256"]
            or fifo["sim_seconds"] != lottery["sim_seconds"]
        )
        lottery2 = run_mt(SMOKE_SCALE, sessions=4, seed=7, policy="lottery")
        assert to_json(lottery) == to_json(lottery2)

    def test_sixty_four_sessions_smoke(self):
        summary = run_mt(SMOKE_SCALE, sessions=64, seed=7, ops_per_session=4)
        assert summary["sessions"] == 64
        assert len(summary["per_session"]) == 64
        assert summary["ops"] > 0
        assert summary["switches"] > 0
        assert 0.0 < summary["fairness"]["jain_ops"] <= 1.0


# ----------------------------------------------------------------------
# crashmc integration
# ----------------------------------------------------------------------
class TestCrashmcMT:
    def test_mt_kv_workload_is_pure(self):
        from repro.crashmc.workload import WORKLOADS, mailserver_mt_kv

        assert "mailserver_mt" in WORKLOADS
        def shape(ops):
            return [(op.kind, op.tree, op.key) for op in ops]

        a = mailserver_mt_kv(5)
        assert shape(a) == shape(mailserver_mt_kv(5))
        assert shape(a) != shape(mailserver_mt_kv(6))
        # Several users' keys appear, and durability points exist.
        keys = {op.key for op in a if getattr(op, "key", None)}
        assert any(k.startswith(b"u0/") for k in keys)
        assert any(k.startswith(b"u3/") for k in keys)
        assert any(op.kind == "sync" for op in a)

    def test_mt_mini_sweep_clean(self):
        from repro.crashmc import CrashExplorer

        explorer = CrashExplorer(
            seed=2, budget=20, workloads=("mailserver_mt",)
        )
        summary = explorer.run()
        assert summary.violations == 0
        assert summary.cases > 0
