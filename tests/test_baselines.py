"""Functional tests for the baseline file-system models."""

import pytest

from repro.baselines import BASELINES, make_baseline
from repro.betrfs.filesystem import MountOptions
from repro.vfs.vfs import FSError

OPTS = MountOptions(scale=1 / 32)


@pytest.fixture(params=sorted(BASELINES))
def mount(request):
    return make_baseline(request.param, OPTS)


class TestFunctional:
    def test_basic_file_lifecycle(self, mount):
        v = mount.vfs
        v.mkdir("/d")
        v.create("/d/f")
        v.write("/d/f", 0, b"hello" * 1000)
        v.fsync("/d/f")
        assert v.read("/d/f", 0, 5) == b"hello"
        assert v.readdir("/d") == ["f"]
        v.unlink("/d/f")
        v.rmdir("/d")
        assert not v.exists("/d")

    def test_data_survives_cache_drop(self, mount):
        v = mount.vfs
        v.create("/f")
        data = bytes(range(256)) * 256  # 64 KiB
        v.write("/f", 0, data)
        v.sync()
        mount.drop_caches()
        assert v.read("/f", 0, len(data)) == data

    def test_rename_preserves_data_without_copy(self, mount):
        v = mount.vfs
        v.create("/a")
        v.write("/a", 0, b"M" * 50000)
        v.sync()
        written_before = mount.device.stats.bytes_written
        v.rename("/a", "/b")
        v.sync()
        written_after = mount.device.stats.bytes_written
        # Rename is metadata-only: far less than re-writing 50 KB.
        assert written_after - written_before < 50000
        assert v.read("/b", 0, 50000) == b"M" * 50000

    def test_directory_rename_moves_subtree(self, mount):
        v = mount.vfs
        v.mkdir("/x")
        v.mkdir("/x/y")
        v.create("/x/y/f")
        v.write("/x/y/f", 0, b"deep")
        v.rename("/x", "/z")
        assert v.read("/z/y/f", 0, 4) == b"deep"
        assert not v.exists("/x")

    def test_sparse_files(self, mount):
        v = mount.vfs
        v.create("/sparse")
        v.write("/sparse", 10 * 4096, b"end")
        mount.drop_caches()
        assert v.read("/sparse", 0, 4096) == b"\x00" * 4096
        assert v.read("/sparse", 10 * 4096, 3) == b"end"

    def test_rmdir_nonempty_fails(self, mount):
        v = mount.vfs
        v.mkdir("/d")
        v.create("/d/f")
        with pytest.raises(FSError):
            v.rmdir("/d")


class TestModelBehaviour:
    def test_cold_lookup_reads_metadata_blocks(self):
        mount = make_baseline("ext4", OPTS)
        v = mount.vfs
        v.mkdir("/d")
        v.create("/d/f")
        v.sync()
        mount.drop_caches()
        reads_before = mount.device.stats.reads
        v.stat("/d/f")
        assert mount.device.stats.reads > reads_before

    def test_warm_lookup_is_read_free(self):
        mount = make_baseline("ext4", OPTS)
        v = mount.vfs
        v.mkdir("/d")
        v.create("/d/f")
        v.stat("/d/f")
        reads_before = mount.device.stats.reads
        v.stat("/d/f")
        assert mount.device.stats.reads == reads_before

    def test_random_writes_slower_than_sequential(self):
        mount = make_baseline("ext4", OPTS)
        v = mount.vfs
        v.create("/f")
        chunk = b"s" * 4096
        for i in range(256):
            v.write("/f", i * 4096, chunk)
        v.fsync("/f")
        t0 = mount.clock.now
        for i in range(256):
            v.write("/f2" if False else "/f", i * 4096, chunk)
        v.fsync("/f")
        seq_time = mount.clock.now - t0
        import random

        rng = random.Random(1)
        t0 = mount.clock.now
        for _ in range(256):
            v.write("/f", rng.randrange(256) * 4096, chunk)
        v.fsync("/f")
        rand_time = mount.clock.now - t0
        assert rand_time > seq_time * 2

    def test_zfs_random_writes_slowest(self):
        times = {}
        import random

        for name in ("xfs", "zfs"):
            mount = make_baseline(name, OPTS)
            v = mount.vfs
            v.create("/f")
            for i in range(512):
                v.write("/f", i * 4096, b"p" * 4096)
            v.fsync("/f")
            rng = random.Random(2)
            t0 = mount.clock.now
            for _ in range(256):
                v.write("/f", rng.randrange(512) * 4096, b"q" * 4096)
            v.fsync("/f")
            times[name] = mount.clock.now - t0
        assert times["zfs"] > times["xfs"]

    def test_small_files_pack_into_directory_zones(self):
        mount = make_baseline("ext4", OPTS)
        v = mount.vfs
        v.mkdir("/d")
        for i in range(64):
            path = f"/d/f{i:02d}"
            v.create(path)
            v.write(path, 0, b"t" * 200)
        v.sync()
        # Write-back of the 64 tiny files must be mostly sequential.
        s = mount.device.stats
        assert s.seq_writes > s.rand_writes

    def test_params_exist_for_all_paper_baselines(self):
        assert set(BASELINES) == {"ext4", "btrfs", "xfs", "f2fs", "zfs"}

    def test_unknown_baseline_rejected(self):
        with pytest.raises(KeyError):
            make_baseline("ntfs", OPTS)
