"""Tests for the experiment harness (classification, rendering, CLI)."""

import dataclasses
import json
import os

import pytest

from repro.harness.compleat import Classification, classify, column_best, is_compleat
from repro.harness.paperdata import COLUMNS, HIGHER_IS_BETTER, PAPER_TABLE3
from repro.harness.runner import (
    MICROBENCHES,
    TABLE1_SYSTEMS,
    TABLE3_SYSTEMS,
    make_mount,
    run_micro,
)
from repro.harness.tables import render_table, render_vs_paper
from repro.workloads.scale import SMOKE_SCALE

TINY = dataclasses.replace(
    SMOKE_SCALE,
    seq_bytes=2 << 20,
    rand_file_bytes=2 << 20,
    rand_ops=64,
    toku_files=200,
    tree_files=50,
    tree_bytes=1 << 20,
)


class TestCompleatMetric:
    def test_throughput_classification(self):
        assert classify(100, 100, True) is Classification.GREEN
        assert classify(86, 100, True) is Classification.GREEN
        assert classify(84, 100, True) is Classification.PLAIN
        assert classify(29, 100, True) is Classification.RED
        assert classify(31, 100, True) is Classification.PLAIN

    def test_latency_classification(self):
        assert classify(1.0, 1.0, False) is Classification.GREEN
        assert classify(1.14, 1.0, False) is Classification.GREEN
        assert classify(3.0, 1.0, False) is Classification.PLAIN
        assert classify(3.5, 1.0, False) is Classification.RED

    def test_none_is_plain(self):
        assert classify(None, 100, True) is Classification.PLAIN

    def test_column_best(self):
        col = {"a": 5.0, "b": 9.0, "c": None}
        assert column_best(col, True) == 9.0
        assert column_best(col, False) == 5.0

    def test_paper_table_shading_reproduced(self):
        """The paper's own numbers must classify as the paper shades
        them: every baseline has a red cell, v0.6 has none."""
        rows = PAPER_TABLE3
        systems = [s for s in rows if s != "BetrFS v0.6"]
        for baseline in ("ext4", "btrfs", "xfs", "f2fs", "zfs", "BetrFS v0.4"):
            assert not is_compleat(
                {s: rows[s] for s in systems}, baseline, HIGHER_IS_BETTER
            ), baseline
        assert is_compleat(
            {s: rows[s] for s in systems}, "+QRY", HIGHER_IS_BETTER
        )


class TestRendering:
    def test_render_contains_all_systems_and_columns(self):
        text = render_vs_paper(PAPER_TABLE3, TABLE3_SYSTEMS, "t")
        for system in TABLE3_SYSTEMS:
            assert system in text
        for header in ("SeqRd", "Toku", "grep"):
            assert header in text

    def test_render_marks(self):
        text = render_table(PAPER_TABLE3, TABLE3_SYSTEMS, "t")
        assert "!" in text  # red cells exist
        assert "+" in text  # green cells exist


class TestRunner:
    def test_make_mount_dispatch(self):
        assert make_mount("ext4", TINY).name == "ext4"
        assert make_mount("BetrFS v0.6", TINY).name == "BetrFS v0.6"
        with pytest.raises(KeyError):
            make_mount("reiserfs", TINY)

    def test_all_table_systems_mountable(self):
        for system in set(TABLE1_SYSTEMS + TABLE3_SYSTEMS):
            make_mount(system, TINY)

    def test_run_micro_subset(self):
        out = run_micro("ext4", TINY, only=["seq"])
        assert set(out) == {"seq_read", "seq_write"}
        assert all(v > 0 for v in out.values())

    def test_microbench_registry_covers_all_columns(self):
        produced = set()
        for bench in MICROBENCHES:
            if bench == "seq":
                produced |= {"seq_read", "seq_write"}
            else:
                produced.add(bench)
        assert produced == set(COLUMNS)


class TestCLI:
    def test_cli_table1_smoke(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        rc = main(
            [
                "table1",
                "--scale",
                "smoke",
                "--systems",
                "ext4",
                "--quiet",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ext4" in out
        data = json.loads((tmp_path / "results.json").read_text())
        assert "ext4" in data["tables"]
