"""Tests for the whole-program analyses: repro.check.arch + costflow.

Two families:

* fixture trees under ``tests/fixtures/arch`` and
  ``tests/fixtures/costflow`` prove each rule *can* fire (a rule whose
  failing fixture passes is a rule that checks nothing);
* self-tests prove the real ``src/repro`` tree is clean, so any new
  violation is a regression introduced by the change under review.
"""

import json
import os

import pytest

from repro.check import arch, costflow, lint

ARCH_TREE = os.path.join(os.path.dirname(__file__), "fixtures", "arch", "tree")
FLOW_TREE = os.path.join(
    os.path.dirname(__file__), "fixtures", "costflow", "tree"
)

#: Layer manifest for the arch fixture tree (top -> bottom).
FIX_MANIFEST = (
    ("root", ("fixpkg",)),
    ("high", ("fixpkg.high",)),
    ("mid", ("fixpkg.cyc_a", "fixpkg.cyc_b", "fixpkg.unused")),
    ("low", ("fixpkg.low",)),
)


def _arch_fixture_report():
    return arch.analyze(root=ARCH_TREE, manifest=FIX_MANIFEST, package="fixpkg")


def _flow_fixture_report():
    return costflow.analyze(root=FLOW_TREE, package="flowpkg", exempt=())


# ======================================================================
# Architecture analysis
# ======================================================================
class TestArchFixtures:
    def test_every_rule_fires_exactly_once(self):
        report = _arch_fixture_report()
        by_rule = {}
        for violation in report.violations:
            by_rule.setdefault(violation.rule, []).append(violation)
        assert set(by_rule) == {
            "layer-violation",
            "import-cycle",
            "unclassified-module",
            "unused-waiver",
        }, [v.render() for v in report.violations]
        for rule, found in by_rule.items():
            assert len(found) == 1, (rule, [v.render() for v in found])

    def test_layer_violation_names_both_layers(self):
        report = _arch_fixture_report()
        [violation] = [
            v for v in report.violations if v.rule == "layer-violation"
        ]
        assert violation.path.endswith(os.path.join("low", "bad.py"))
        assert "'low'" in violation.message and "'high'" in violation.message

    def test_cycle_reports_a_real_path(self):
        report = _arch_fixture_report()
        [violation] = [v for v in report.violations if v.rule == "import-cycle"]
        msg = violation.message
        assert "fixpkg.cyc_a" in msg and "fixpkg.cyc_b" in msg
        # The rendered chain starts and ends on the same module.
        chain = msg.split("import cycle: ")[1].split(" -> ")
        assert chain[0] == chain[-1]

    def test_waiver_suppresses_exactly_one_finding(self):
        """The waived upward edge (waived_ok.py) is silent; the unwaived
        twin (bad.py) still fires.  Used waivers stay visible."""
        report = _arch_fixture_report()
        layer_paths = [
            v.path for v in report.violations if v.rule == "layer-violation"
        ]
        assert not any("waived_ok" in p for p in layer_paths)
        assert any(p.endswith("bad.py") for p in layer_paths)
        assert any("waived_ok" in w for w in report.waivers)

    def test_unused_waiver_is_an_error(self):
        report = _arch_fixture_report()
        [violation] = [v for v in report.violations if v.rule == "unused-waiver"]
        assert violation.path.endswith("unused.py")
        assert "suppresses nothing" in violation.message

    def test_graph_export_round_trips(self, tmp_path):
        report = _arch_fixture_report()
        prefix = str(tmp_path / "graph")
        files = arch.write_graph(report, prefix)
        assert sorted(files) == sorted([prefix + ".json", prefix + ".dot"])
        with open(prefix + ".json") as fh:
            payload = json.load(fh)
        assert payload["modules"]["fixpkg.low.bad"] == "low"
        assert any(
            e["src"] == "fixpkg.cyc_a" and e["dst"] == "fixpkg.cyc_b"
            for e in payload["edges"]
        )
        with open(prefix + ".dot") as fh:
            dot = fh.read()
        assert dot.startswith("digraph") and "fixpkg.cyc_a" in dot

    def test_empty_waiver_reason_is_an_error(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("import emptypkg.b  # arch: allow[]\n")
        (pkg / "b.py").write_text("VALUE = 1\n")
        report = arch.analyze(
            root=str(pkg),
            manifest=(("only", ("emptypkg.a", "emptypkg.b")),),
            package="emptypkg",
        )
        assert any(
            v.rule == "unused-waiver" and "empty justification" in v.message
            for v in report.violations
        ), [v.render() for v in report.violations]


class TestArchRealTree:
    def test_real_tree_is_clean(self):
        report = arch.analyze()
        assert report.ok, "\n".join(v.render() for v in report.violations)

    def test_every_real_waiver_is_used_and_justified(self):
        report = arch.analyze()
        for rendered in report.waivers:
            reason = rendered.split("allow[", 1)[1].rstrip("]")
            assert reason.strip(), rendered

    def test_manifest_matches_discovered_packages(self):
        """Satellite: the committed layer manifest and the package list
        on disk cannot drift apart silently."""
        assert arch.manifest_packages() == arch.discovered_packages()

    def test_known_edges_present(self):
        """Spot-check the graph is real: core sits above storage, the
        harness sits above everything it drives."""
        report = arch.analyze()
        edges = {(e.src, e.dst) for e in report.edges}
        assert ("repro.core.tree", "repro.core.serialize") in edges
        assert ("repro.core.env", "repro.core.wal") in edges
        layer = report.modules
        assert layer["repro.core.tree"] == "core"
        assert layer["repro.device.block"] == "device"
        assert layer["repro.check.errors"] == "errors"


# ======================================================================
# Cost-flow analysis
# ======================================================================
class TestCostflowFixtures:
    def test_uncharged_bytes_fires_on_leaky_class(self):
        report = _flow_fixture_report()
        uncharged = [
            v for v in report.violations if v.rule == "uncharged-bytes"
        ]
        assert len(uncharged) == 1, [v.render() for v in report.violations]
        [violation] = uncharged
        assert violation.path.endswith("bad.py")
        assert "store.read()" in violation.message
        assert "Leaky.drain" in violation.message  # call-chain evidence

    def test_charging_caller_dominates_helper(self):
        """good.py's load() moves bytes uncharged but every caller
        charges first: no finding."""
        report = _flow_fixture_report()
        assert not any("good.py" in v.path for v in report.violations)

    def test_waiver_suppresses_exactly_one_finding(self):
        report = _flow_fixture_report()
        assert not any(
            "waived.py" in v.path and v.rule == "uncharged-bytes"
            for v in report.violations
        )
        assert any("waived.py" in w for w in report.waivers)
        # The unwaived finding in bad.py is still reported.
        assert any("bad.py" in v.path for v in report.violations)

    def test_unused_waiver_is_an_error(self):
        report = _flow_fixture_report()
        [violation] = [
            v for v in report.violations if v.rule == "unused-waiver"
        ]
        assert violation.path.endswith("unused.py")

    def test_report_dict_round_trips(self):
        report = _flow_fixture_report()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["sources_checked"] == report.sources_checked
        assert len(payload["violations"]) == len(report.violations)


class TestCostflowRealTree:
    def test_real_tree_is_clean(self):
        report = costflow.analyze()
        assert report.ok, "\n".join(v.render() for v in report.violations)

    def test_analysis_actually_sees_the_program(self):
        """Guard against a silently degenerate analysis: the call graph
        and the sink/source sets must stay populated."""
        report = costflow.analyze()
        assert report.functions > 500
        assert report.call_edges > 800
        assert report.charging_functions > 100
        assert report.sources_checked > 20


# ======================================================================
# CLI composition
# ======================================================================
class TestCheckCli:
    def test_lint_runs_all_three_passes_clean(self, capsys):
        assert lint.main([]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_json_format_round_trips(self, capsys):
        assert lint.main(["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert payload["arch"]["modules"] > 50
        assert payload["costflow"]["functions"] > 500
        assert all("allow[" in w for w in payload["waivers"])

    def test_graph_out_writes_artifacts(self, capsys, tmp_path):
        prefix = str(tmp_path / "import-graph")
        assert lint.main(["--format", "json", "--graph-out", prefix]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph_files"] == [prefix + ".json", prefix + ".dot"]
        assert os.path.exists(prefix + ".json")
        assert os.path.exists(prefix + ".dot")

    def test_subcommands_run_standalone(self, capsys):
        from repro.check.__main__ import main as check_main

        assert check_main(["arch"]) == 0
        assert "clean" in capsys.readouterr().out
        assert check_main(["costflow"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_costflow_cli_flags_fixture_free_tree(self, capsys, monkeypatch):
        """Exit-code contract: violations -> 1."""
        fixture_report = _flow_fixture_report()
        monkeypatch.setattr(
            costflow, "analyze", lambda *a, **k: fixture_report
        )
        assert costflow.main([]) == 1
        out = capsys.readouterr().out
        assert "[uncharged-bytes]" in out
