"""Tests for ``repro.shard``: the partitioned namespace.

The PR's shard invariants:

* routing is **total** (every path owns exactly one shard index in
  range) and **stable under re-mount** (a map rebuilt from its own
  serialized form routes identically) — hypothesis properties;
* an N=1 sharded run is **bit-identical** to the unsharded mount
  (device sha256 and simulated clock);
* the two-phase cross-shard protocol leaves no intent behind on the
  happy path, rolls forward idempotently on recovery, and survives a
  bounded crashmc sweep with zero oracle violations;
* per-shard volumes fsck clean and the load/imbalance gauges report.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.betrfs.filesystem import make_betrfs
from repro.check.fsck import fsck_volumes
from repro.core.env import DATA, META
from repro.harness.mt import device_sha256, run_mt, to_json
from repro.obs import Observability, session
from repro.shard import (
    INTENT_PREFIX,
    ShardMap,
    ShardedBetrFS,
    make_sharded_betrfs,
    pack_intent,
    parent_dir,
    unpack_intent,
)
from repro.shard.map import default_boundaries
from repro.workloads.mailserver_mt import mailserver_mt
from repro.workloads.scale import SMOKE_SCALE

paths = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
    min_size=1,
    max_size=24,
).map(lambda s: "/" + s)


# ----------------------------------------------------------------------
# ShardMap routing
# ----------------------------------------------------------------------
class TestShardMap:
    def test_parent_dir(self):
        assert parent_dir("/") == "/"
        assert parent_dir("/a") == "/"
        assert parent_dir("/a/b/c") == "/a/b"
        assert parent_dir("/a/b/") == "/a"
        assert parent_dir("name") == ""

    def test_hash_colocates_siblings(self):
        sm = ShardMap.create(4, "hash")
        owners = {sm.owner_of_entry(f"/d/sub/f{i}") for i in range(50)}
        assert len(owners) == 1
        assert owners == set(sm.children_span("/d/sub"))

    def test_hash_spreads_structured_directories(self):
        """Sibling dirs differing in a digit must not all collapse onto
        one shard (the crc32-linearity trap the finalizer breaks)."""
        sm = ShardMap.create(4, "hash")
        owners = {
            sm.owner_of_entry(f"/mail/folder{f:02d}/cur/m0") for f in range(10)
        }
        assert len(owners) > 1

    def test_range_mode_keeps_subtree_contiguous(self):
        sm = ShardMap.create(4, "range")
        span = sm.children_span("/kernel/src")
        assert span == sorted(span)
        owner = sm.owner_of_entry("/kernel/src/main.c")
        assert owner in span

    def test_one_shard_short_circuits(self):
        sm = ShardMap.create(1)
        assert sm.owner_of_entry("/anything") == 0
        assert sm.children_span("/anything") == [0]

    def test_key_routing_strips_block_suffix(self):
        sm = ShardMap.create(8, "hash")
        path = "/a/b/file"
        want = sm.owner_of_entry(path)
        assert sm.owner_of_key(path.encode()) == want
        assert sm.owner_of_key(path.encode() + b"\x00\x00\x00\x07") == want

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardMap(0)
        with pytest.raises(ValueError, match="unknown shard mode"):
            ShardMap(2, "modulo")
        with pytest.raises(ValueError, match="boundaries"):
            ShardMap(3, "range", ("/m",))
        with pytest.raises(ValueError, match="increasing"):
            ShardMap(3, "range", ("/m", "/a"))
        with pytest.raises(ValueError, match="no boundaries"):
            ShardMap(2, "hash", ("/m",))
        with pytest.raises(ValueError, match="at most"):
            default_boundaries(200)

    @settings(max_examples=200, deadline=None)
    @given(
        paths,
        st.integers(min_value=1, max_value=16),
        st.sampled_from(["hash", "range"]),
    )
    def test_routing_total_and_remount_stable(self, path, shards, mode):
        sm = ShardMap.create(shards, mode)
        owner = sm.owner_of_entry(path)
        assert 0 <= owner < shards
        remounted = ShardMap.from_dict(json.loads(json.dumps(sm.to_dict())))
        assert remounted == sm
        assert remounted.owner_of_entry(path) == owner
        assert remounted.owner_of_key(path.encode()) == sm.owner_of_key(
            path.encode()
        )

    @settings(max_examples=100, deadline=None)
    @given(paths, st.integers(min_value=2, max_value=8))
    def test_children_stay_in_span(self, dirpath, shards):
        for mode in ("hash", "range"):
            sm = ShardMap.create(shards, mode)
            span = sm.children_span(dirpath)
            for child in ("a", "m0001", "zz~"):
                owner = sm.owner_of_entry(dirpath + "/" + child)
                assert owner in span


# ----------------------------------------------------------------------
# Two-phase protocol (KV level)
# ----------------------------------------------------------------------
class TestTwoPhase:
    def test_intent_record_round_trip(self):
        inserts = [(2, META, b"/a/k", b"v1"), (0, DATA, b"/a/k", b"\x00" * 64)]
        deletes = [(1, META, b"/b/old"), (1, DATA, b"/b/old")]
        payload = pack_intent(inserts, deletes)
        assert unpack_intent(payload) == (inserts, deletes)
        assert unpack_intent(pack_intent([], [])) == ([], [])

    def _mount(self, shards=4):
        return make_sharded_betrfs("BetrFS v0.6", shards=shards)

    def test_xrename_moves_and_retires_intent(self):
        fs = self._mount()
        env, sm = fs.env, fs.shard_map
        src, dst = b"/dirA/x", b"/other/y"
        # Pick paths on different shards (probe a few suffixes).
        i = 0
        while sm.owner_of_key(src) == sm.owner_of_key(dst):
            dst = b"/other%d/y" % i
            i += 1
        env.insert(META, src, b"payload")
        env.sync()
        env.xrename(META, src, dst)
        assert env.get(META, src) is None
        assert env.get(META, dst) is not None
        assert env.pending_intents() == 0
        assert env.xshard_ops == 1

    def test_xrename_missing_source_is_noop(self):
        fs = self._mount()
        fs.env.xrename(META, b"/no/such", b"/else/where")
        assert fs.env.xshard_ops == 0

    def test_resolve_intents_rolls_forward_idempotently(self):
        fs = self._mount()
        env = fs.env
        # Simulate a crash after phase 1: the intent record is durable
        # but none of the batch has been applied.
        src_shard = fs.shard_map.owner_of_key(b"/src/k")
        dst_shard = fs.shard_map.owner_of_key(b"/dst/k")
        inserts = [(dst_shard, META, b"/dst/k", b"moved")]
        deletes = [(src_shard, META, b"/src/k")]
        env.envs[src_shard].insert(META, b"/src/k", b"moved")
        env.envs[src_shard].insert(
            META, INTENT_PREFIX + b"\x00" * 8, pack_intent(inserts, deletes)
        )
        env.sync()
        assert env.pending_intents() == 1
        assert env.resolve_intents() == 1
        assert env.get(META, b"/dst/k") is not None
        assert env.get(META, b"/src/k") is None
        assert env.pending_intents() == 0
        # A second recovery finds nothing and changes nothing.
        assert env.resolve_intents() == 0


# ----------------------------------------------------------------------
# Sharded mount end-to-end
# ----------------------------------------------------------------------
class TestShardedMount:
    def test_cross_shard_file_rename_via_vfs(self):
        with session(Observability()):
            fs = make_sharded_betrfs("BetrFS v0.6", shards=4)
            vfs, sm = fs.vfs, fs.shard_map
            vfs.mkdir("/a")
            i = 0
            dst_dir = "/b"
            while sm.owner_of_entry("/a/f") == sm.owner_of_entry(
                f"{dst_dir}/f"
            ):
                dst_dir = f"/b{i}"
                i += 1
            vfs.mkdir(dst_dir)
            vfs.create("/a/f")
            vfs.write("/a/f", 0, b"hello shard")
            vfs.fsync("/a/f")
            vfs.rename("/a/f", f"{dst_dir}/f")
            assert fs.backend.cross_renames == 1
            assert fs.env.pending_intents() == 0
            assert vfs.read(f"{dst_dir}/f", 0, 11) == b"hello shard"
            assert not vfs.exists("/a/f")
            assert vfs.readdir(dst_dir) == ["f"]

    def test_volumes_fsck_clean_and_gauges_report(self):
        with session(Observability()):
            fs = make_sharded_betrfs("BetrFS v0.6", shards=4)
            vfs = fs.vfs
            vfs.mkdir("/d")
            for i in range(12):
                path = f"/d{i % 3}" if i % 3 else "/d"
                if not vfs.exists(path):
                    vfs.mkdir(path)
                vfs.create(f"{path}/f{i}")
                vfs.write(f"{path}/f{i}", 0, b"x" * 4096)
            vfs.sync()
            reports = fsck_volumes(
                fs.device.crash_image(),
                fs.shards,
                fs.opts.log_size,
                fs.opts.meta_size,
                volume_bytes=fs.volume_bytes,
            )
            assert len(reports) == 4
            for report in reports:
                assert report.ok, report.errors
            assert sum(fs.backend.loads) > 0
            assert fs.load_imbalance() >= 1.0
            reg = fs.obs.registry
            assert reg.find("shard.imbalance", layer="shard") is not None
            assert reg.find("shard.load.00", layer="shard") is not None

    def test_sharding_requires_sfl(self):
        with pytest.raises(ValueError, match="SFL"):
            make_sharded_betrfs("BetrFS v0.4", shards=2)


# ----------------------------------------------------------------------
# N=1 bit-identity and sharded mt determinism
# ----------------------------------------------------------------------
class TestShardInvariants:
    def test_one_shard_bit_identical_to_unsharded(self):
        def run(make):
            with session(Observability()):
                fs = make()
                mailserver_mt(
                    fs, SMOKE_SCALE, sessions=4, seed=7, ops_per_session=40
                )
                return device_sha256(fs.device), fs.clock.now

        plain = run(lambda: make_betrfs("BetrFS v0.6"))
        sharded = run(lambda: make_sharded_betrfs("BetrFS v0.6", shards=1))
        assert sharded == plain

    def test_sharded_mt_summary_deterministic(self):
        def run():
            with session(Observability()):
                return to_json(
                    run_mt(SMOKE_SCALE, sessions=6, seed=7, shards=4)
                )

        a, b = run(), run()
        assert a == b
        summary = json.loads(a)
        assert summary["shards"]["count"] == 4
        assert sum(summary["shards"]["loads"]) > 0
        assert summary["shards"]["imbalance"] >= 1.0
        lock_classes = {
            key.split(":", 1)[0]
            for pair in summary["lock_order"]
            for key in pair
        }
        assert lock_classes <= {"shard"}

    def test_webserver_mt_sharded_affinity(self):
        with session(Observability()):
            summary = run_mt(
                SMOKE_SCALE,
                sessions=6,
                seed=7,
                shards=4,
                workload="webserver_mt",
            )
        affinities = [s["affinity"] for s in summary["per_session"]]
        assert all(a is not None and 0 <= a < 4 for a in affinities)
        assert summary["workload"] == "webserver_mt"

    def test_unknown_mt_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown mt workload"):
            run_mt(SMOKE_SCALE, workload="nope")


# ----------------------------------------------------------------------
# Crash exploration over the sharded stack
# ----------------------------------------------------------------------
class TestShardCrashmc:
    def test_bounded_sweep_zero_violations(self):
        from repro.crashmc import CrashExplorer

        summary = CrashExplorer(
            seed=2, budget=24, workloads=("xshard_rename",)
        ).run()
        assert summary.cases == 24
        assert summary.violations == 0

    def test_sharded_stack_apply_and_reboot(self):
        from repro.crashmc.oracle import Op
        from repro.crashmc.shardmc import ShardedStack

        stack = ShardedStack()
        stack.apply(Op("insert", META, b"dir00/a", b"v"))
        stack.apply(Op("sync"))
        stack.apply(Op("xrename", META, b"dir00/a", end=b"dir01/a"))
        get = stack.reboot(stack.device.crash_image())
        assert get(META, b"dir00/a") is None
        assert get(META, b"dir01/a") is not None
