"""VFS-layer tests: namespace semantics, page cache, write-back."""

import pytest

from repro.betrfs import make_betrfs
from repro.betrfs.filesystem import MountOptions
from repro.vfs.vfs import FSError

PAGE = 4096


@pytest.fixture
def fs():
    return make_betrfs("BetrFS v0.6", MountOptions(scale=1 / 32))


@pytest.fixture
def v(fs):
    return fs.vfs


class TestNamespace:
    def test_create_and_stat(self, v):
        v.create("/f")
        st = v.stat("/f")
        assert st.kind.name == "FILE"
        assert st.size == 0

    def test_create_exists_fails(self, v):
        v.create("/f")
        with pytest.raises(FSError) as err:
            v.create("/f")
        assert "EEXIST" in str(err.value)

    def test_create_in_missing_dir_fails(self, v):
        with pytest.raises(FSError) as err:
            v.create("/nodir/f")
        assert "ENOENT" in str(err.value)

    def test_mkdir_and_nesting(self, v):
        v.mkdir("/a")
        v.mkdir("/a/b")
        v.create("/a/b/f")
        assert v.stat("/a/b").kind.name == "DIR"
        assert v.readdir("/a") == ["b"]
        assert v.readdir("/a/b") == ["f"]

    def test_unlink(self, v):
        v.create("/f")
        v.unlink("/f")
        assert not v.exists("/f")
        with pytest.raises(FSError):
            v.unlink("/f")

    def test_unlink_dir_fails(self, v):
        v.mkdir("/d")
        with pytest.raises(FSError) as err:
            v.unlink("/d")
        assert "EISDIR" in str(err.value)

    def test_rmdir_requires_empty(self, v):
        v.mkdir("/d")
        v.create("/d/f")
        with pytest.raises(FSError) as err:
            v.rmdir("/d")
        assert "ENOTEMPTY" in str(err.value)
        v.unlink("/d/f")
        v.rmdir("/d")
        assert not v.exists("/d")

    def test_rename_file(self, v):
        v.create("/a")
        v.write("/a", 0, b"payload")
        v.rename("/a", "/b")
        assert not v.exists("/a")
        assert v.read("/b", 0, 7) == b"payload"

    def test_rename_over_existing_file_replaces(self, v):
        v.create("/a")
        v.write("/a", 0, b"new")
        v.create("/b")
        v.write("/b", 0, b"old")
        v.rename("/a", "/b")
        assert v.read("/b", 0, 3) == b"new"

    def test_rename_directory_moves_subtree(self, v):
        v.mkdir("/src")
        v.mkdir("/src/deep")
        v.create("/src/deep/f")
        v.write("/src/deep/f", 0, b"x" * 5000)
        v.rename("/src", "/dst")
        assert not v.exists("/src")
        assert v.read("/dst/deep/f", 0, 5000) == b"x" * 5000

    def test_readdir_sorted_complete(self, v):
        v.mkdir("/d")
        names = [f"f{i:02d}" for i in range(20)]
        for n in reversed(names):
            v.create(f"/d/{n}")
        assert v.readdir("/d") == names

    def test_readdir_plus_kinds(self, v):
        v.mkdir("/d")
        v.create("/d/file")
        v.mkdir("/d/sub")
        kinds = {n: st.kind.name for n, st in v.readdir_plus("/d")}
        assert kinds == {"file": "FILE", "sub": "DIR"}


class TestDataPath:
    def test_write_read_roundtrip(self, v):
        v.create("/f")
        data = bytes(range(256)) * 64  # 16 KiB
        v.write("/f", 0, data)
        assert v.read("/f", 0, len(data)) == data
        assert v.stat("/f").size == len(data)

    def test_sparse_read_returns_zeros(self, v):
        v.create("/f")
        v.write("/f", 3 * PAGE, b"tail")
        got = v.read("/f", 0, PAGE)
        assert got == b"\x00" * PAGE

    def test_partial_overwrite(self, v):
        v.create("/f")
        v.write("/f", 0, b"a" * PAGE)
        v.write("/f", 100, b"MID")
        got = v.read("/f", 98, 7)
        assert got == b"aaMIDaa"

    def test_read_past_eof_truncates(self, v):
        v.create("/f")
        v.write("/f", 0, b"short")
        assert v.read("/f", 0, 1000) == b"short"
        assert v.read("/f", 100, 10) == b""

    def test_write_survives_cache_drop(self, v, fs):
        v.create("/f")
        data = b"Q" * (8 * PAGE)
        v.write("/f", 0, data)
        v.fsync("/f")
        fs.drop_caches()
        assert v.read("/f", 0, len(data)) == data

    def test_blind_patch_of_uncached_block(self, v, fs):
        v.create("/f")
        v.write("/f", 0, b"a" * (4 * PAGE))
        v.fsync("/f")
        fs.drop_caches()
        v.write("/f", 10, b"ZZ")  # small write, cold page -> blind patch
        assert v.read("/f", 8, 6) == b"aaZZaa"
        v.fsync("/f")
        fs.drop_caches()
        assert v.read("/f", 8, 6) == b"aaZZaa"

    def test_unlink_then_recreate_is_empty(self, v):
        v.create("/f")
        v.write("/f", 0, b"old" * 100)
        v.fsync("/f")
        v.unlink("/f")
        v.create("/f")
        assert v.stat("/f").size == 0
        assert v.read("/f", 0, 10) == b""


class TestWriteBackAndSharing:
    def test_dirty_pages_written_back_on_fsync(self, v, fs):
        v.create("/f")
        v.write("/f", 0, b"d" * PAGE)
        assert fs.vfs.pages.dirty_bytes == PAGE
        v.fsync("/f")
        assert fs.vfs.pages.dirty_bytes == 0

    def test_page_sharing_marks_frames_shared(self, fs, v):
        assert fs.features.page_sharing
        v.create("/f")
        v.write("/f", 0, b"s" * PAGE)
        v.fsync("/f")
        page = fs.vfs.pages.lookup("/f", 0)
        assert page.writeback_shared
        assert page.frame.refs >= 2  # page cache + tree

    def test_cow_on_write_to_shared_page(self, fs, v):
        v.create("/f")
        v.write("/f", 0, b"1" * PAGE)
        v.fsync("/f")
        old_frame = fs.vfs.pages.lookup("/f", 0).frame
        v.write("/f", 0, b"2" * PAGE)  # CoW: tree still references old
        new_frame = fs.vfs.pages.lookup("/f", 0).frame
        assert new_frame is not old_frame
        assert fs.vfs.pages.cow_copies >= 1
        assert v.read("/f", 0, 4) == b"2222"

    def test_no_sharing_without_pgsh(self):
        fs = make_betrfs("+RG", MountOptions(scale=1 / 32))
        v = fs.vfs
        v.create("/f")
        v.write("/f", 0, b"x" * PAGE)
        v.fsync("/f")
        page = fs.vfs.pages.lookup("/f", 0)
        assert not page.writeback_shared


class TestDirtyInodes:
    def test_conditional_logging_defers_insert(self, fs, v):
        assert fs.features.conditional_logging
        before = fs.env.meta.stats.inserts
        v.create("/deferred")
        assert fs.env.meta.stats.inserts == before  # not in the tree yet
        assert fs.backend.deferred_creates == 1
        assert v.exists("/deferred")  # served from the dirty inode
        v.sync()
        assert fs.backend.deferred_creates == 0
        assert fs.env.meta.stats.inserts > before

    def test_deferred_create_survives_crash_after_sync(self, fs, v):
        v.create("/d1")
        v.sync()
        # Reboot the whole stack from the device image.
        from repro.core.env import KVEnv
        from repro.kmem.allocator import KernelAllocator
        from repro.model.costs import CostModel
        from repro.storage.sfl import SimpleFileLayer

        image = fs.device.crash_image()
        from repro.check.fsck import fsck_device

        fsck_device(
            image,
            log_size=fs.opts.log_size,
            meta_size=fs.opts.meta_size,
            aligned=fs.config.page_sharing,
        ).raise_if_errors()
        costs = CostModel()
        env2 = KVEnv.open(
            SimpleFileLayer(image, costs, log_size=fs.opts.log_size,
                            meta_size=fs.opts.meta_size),
            image.clock,
            costs,
            KernelAllocator(image.clock, costs),
            fs.config,
            log_size=fs.opts.log_size,
            meta_size=fs.opts.meta_size,
            data_size=fs.opts.data_size,
            log_page_values=False,
        )
        from repro.core.env import META

        assert env2.get(META, b"/d1") is not None
