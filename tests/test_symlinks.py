"""Symbolic-link tests across all file systems."""

import pytest

from repro.baselines import BASELINES
from repro.betrfs.versions import VERSIONS
from repro.harness.runner import make_mount
from repro.vfs.vfs import FSError
from repro.workloads.scale import SMOKE_SCALE

SYSTEMS = ["ext4", "zfs", "BetrFS v0.4", "BetrFS v0.6"]


@pytest.mark.parametrize("system", SYSTEMS)
class TestSymlinks:
    def test_create_and_readlink(self, system):
        v = make_mount(system, SMOKE_SCALE).vfs
        v.create("/target")
        v.symlink("/target", "/link")
        assert v.readlink("/link") == "/target"
        assert v.stat("/link").kind.name == "SYMLINK"

    def test_resolve_and_read_through(self, system):
        mount = make_mount(system, SMOKE_SCALE)
        v = mount.vfs
        v.create("/data")
        v.write("/data", 0, b"through the link")
        v.symlink("/data", "/alias")
        resolved = v.resolve_symlinks("/alias")
        assert v.read(resolved, 0, 16) == b"through the link"

    def test_relative_target_resolution(self, system):
        v = make_mount(system, SMOKE_SCALE).vfs
        v.mkdir("/d")
        v.create("/d/real")
        v.symlink("real", "/d/rel")
        assert v.resolve_symlinks("/d/rel") == "/d/real"

    def test_dangling_symlink(self, system):
        v = make_mount(system, SMOKE_SCALE).vfs
        v.symlink("/nowhere", "/dangling")
        assert v.readlink("/dangling") == "/nowhere"
        assert v.resolve_symlinks("/dangling") == "/nowhere"
        assert not v.exists("/nowhere")

    def test_symlink_loop_detected(self, system):
        v = make_mount(system, SMOKE_SCALE).vfs
        v.symlink("/b", "/a")
        v.symlink("/a", "/b")
        with pytest.raises(FSError) as err:
            v.resolve_symlinks("/a")
        assert "ELOOP" in str(err.value)

    def test_unlink_symlink_keeps_target(self, system):
        v = make_mount(system, SMOKE_SCALE).vfs
        v.create("/keep")
        v.write("/keep", 0, b"safe")
        v.symlink("/keep", "/link")
        v.unlink("/link")
        assert not v.exists("/link")
        assert v.read("/keep", 0, 4) == b"safe"

    def test_readlink_on_regular_file_fails(self, system):
        v = make_mount(system, SMOKE_SCALE).vfs
        v.create("/plain")
        with pytest.raises(FSError):
            v.readlink("/plain")

    def test_symlink_survives_remount(self, system):
        if system not in VERSIONS:
            pytest.skip("remount path is BetrFS-specific")
        mount = make_mount(system, SMOKE_SCALE)
        v = mount.vfs
        v.symlink("/t", "/persisted")
        v.sync()
        mount.drop_caches()
        assert v.readlink("/persisted") == "/t"
