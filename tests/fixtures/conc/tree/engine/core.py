"""Fixture: the engine layer doing everything right — must stay clean.

Fires its own layer's signal through the local-variable idiom (bind,
guard, note), and keeps its critical section suspension-free with the
try/finally shape the real tree uses.
"""


class _Env:
    def __init__(self) -> None:
        self.block_signal = None
        self._depth = 0

    def enter_critical(self) -> None:
        self._depth += 1

    def exit_critical(self) -> None:
        self._depth -= 1


class Engine:
    def __init__(self) -> None:
        self.env = _Env()

    def flush(self) -> None:
        self.env.enter_critical()
        try:
            self.work()
        finally:
            self.env.exit_critical()

    def work(self) -> None:
        signal = self.env.block_signal
        if signal is not None:
            signal.note("tree_io")
