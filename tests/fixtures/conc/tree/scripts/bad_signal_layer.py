"""Fixture: a scripts-layer module fires the engine layer's signal.

``tree_io`` belongs to the ``engine`` layer (see the signal manifest in
the test); firing it from the layer above means the scripts layer is
reporting a blocking point it cannot know about.  Exactly one
``signal-misplaced`` (the guard is correct, so no ``signal-unguarded``).
"""


class Node:
    def __init__(self) -> None:
        self.block_signal = None


def flush(node: Node) -> None:
    if node.block_signal is not None:
        node.block_signal.note("tree_io")
