"""Fixture: a deliberately deadlocking two-lock workload.

Two session scripts take ``alpha`` and ``beta`` in opposite orders with
a real blocking point (write + fsync) in between, so under the FIFO
policy the sessions interleave and end up each waiting on the other's
lock.  This file is used twice by ``tests/test_conc.py``:

* statically — ``repro.check.conc`` reports the ``alpha``/``beta``
  cycle as exactly one ``lock-cycle``;
* dynamically — the module is imported and scheduled against a real
  mount, and the scheduler's all-blocked invariant raises
  ``SchedInvariantError`` on the same scripts.

One fixture, both checkers: the test pins that they agree.
"""

SPOOL = "/spool/deadlock.tmp"


def forward(ctx, vfs):
    yield from ctx.acquire("alpha")
    yield from ctx.run(vfs.write, SPOOL, 0, b"f")
    yield from ctx.run(vfs.fsync, SPOOL)
    yield from ctx.acquire("beta")
    ctx.release("beta")
    ctx.release("alpha")


def backward(ctx, vfs):
    yield from ctx.acquire("beta")
    yield from ctx.run(vfs.write, SPOOL, 0, b"b")
    yield from ctx.run(vfs.fsync, SPOOL)
    yield from ctx.acquire("alpha")
    ctx.release("alpha")
    ctx.release("beta")
