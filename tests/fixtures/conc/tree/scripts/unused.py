"""Fixture: waiver hygiene — both ``unused-waiver`` shapes.

A waiver with an empty reason and a waiver that suppresses nothing are
each errors (dead waivers would silently disable future findings).
Exactly two ``unused-waiver`` violations.
"""


def idle() -> None:
    return None  # conc: allow[]


def also_idle() -> None:
    return None  # conc: allow[nothing here ever triggers, so this waiver is dead]
