"""Fixture: a justified waiver suppresses exactly one finding.

The early return *does* exit holding ``w:probe`` — a ``lock-leak`` —
but the inline ``# conc: allow[...]`` on the flagged line consumes it.
This file must produce no violations and exactly one used waiver.
"""


def probe(ctx):
    yield from ctx.acquire("w:probe")
    return  # conc: allow[fixture: ownership is handed off; the waiver test pins this]
