"""Fixture: two scripts acquire the same two locks in opposite orders.

The may-hold-while-acquiring relation gains ``order:a -> order:b`` and
``order:b -> order:a``; neither edge follows the sorted-key loop
discipline, so conc must report exactly one ``lock-cycle`` here.
"""


def ab(ctx):
    yield from ctx.acquire("order:a")
    yield from ctx.acquire("order:b")
    ctx.release("order:b")
    ctx.release("order:a")


def ba(ctx):
    yield from ctx.acquire("order:b")
    yield from ctx.acquire("order:a")
    ctx.release("order:a")
    ctx.release("order:b")
