"""Fixture: an unsorted cross-shard lock acquire.

Both keys carry the ``shard:`` constant f-string prefix, so they fall
into one precise lock class — but the loop iterates the raw pair
instead of ``sorted(...)``: exactly one ``lock-cycle``.
"""


def xmove(ctx, src: int, dst: int):
    keys = [f"shard:{src}:spool", f"shard:{dst}:spool"]
    for key in keys:
        yield from ctx.acquire(key)
    yield "xmove"
    for key in reversed(keys):
        ctx.release(key)
