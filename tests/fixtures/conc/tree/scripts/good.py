"""Fixture: everything done right — must stay clean.

Sorted multi-lock acquisition through a key-building helper, balanced
release on every exit, a suspension outside any critical section, and a
properly guarded fire of a signal this layer owns.
"""


def _key(folder: int) -> str:
    return f"g:{folder:02d}"


def mover(ctx, first: int, second: int):
    keys = sorted({_key(first), _key(second)})
    for key in keys:
        yield from ctx.acquire(key)
    yield "work"
    for key in reversed(keys):
        ctx.release(key)


def fire(sink) -> None:
    if sink.block_signal is not None:
        sink.block_signal.note("fsync")
