"""Fixture: session-reachable code mutates scheduler-global state.

``SessionContext.run`` reaches ``_cheat`` through the typed call graph,
and ``_cheat`` assigns a ``Scheduler`` attribute outside the sink set.
Exactly one ``conc-impure``.
"""


class Scheduler:
    def __init__(self) -> None:
        self.switches = 0


class SessionContext:
    def __init__(self, sched: Scheduler) -> None:
        self.sched = sched

    def run(self, fn):
        self._cheat()
        return fn()

    def _cheat(self) -> None:
        self.sched.switches = 99
