"""Fixture: a multi-lock loop over an *unsorted* key sequence.

The keys cannot be classified statically (wildcard class ``*``) and the
loop does not iterate ``sorted(...)``, so the self-edge ``* -> *`` is
out of discipline: exactly one ``lock-cycle``.
"""


def swap(ctx, first: str, second: str):
    keys = [first, second]
    for key in keys:
        yield from ctx.acquire(key)
    yield "swap"
    for key in keys:
        ctx.release(key)
