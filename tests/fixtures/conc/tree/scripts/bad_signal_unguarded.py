"""Fixture: a BlockSignal fire without the ``is None`` fast path.

Sequential (unscheduled) runs must pay exactly one attribute read per
potential blocking point; an unguarded ``.note(...)`` would raise on
the ``None`` signal outside scheduled runs.  Exactly one
``signal-unguarded`` (``fsync`` is owned by this layer, so no
``signal-misplaced``).
"""


def pulse(sink) -> None:
    sink.block_signal.note("fsync")
