"""Fixture: an early return exits still holding a session lock.

Every ``ctx.acquire`` must dominate a matching ``ctx.release`` on all
non-exception exits.  Exactly one ``lock-leak`` (at the bare return).
"""


def leaky(ctx, flag: bool):
    yield from ctx.acquire("leak:1")
    if flag:
        return
    ctx.release("leak:1")
