"""Fixture: a generator suspends inside a critical section.

The tree must be quiescent at every session switch; yielding between
``enter_critical`` and ``exit_critical`` hands control to another
session mid-flush.  Exactly one ``critical-yield``.
"""


def flusher(env):
    env.enter_critical()
    yield "tick"
    env.exit_critical()
