"""Fixture: assert statements are stripped by ``python -O``."""


def reserve(nbytes: int) -> int:
    assert nbytes > 0
    total = nbytes * 2
    assert total > nbytes, "overflow"
    return total
