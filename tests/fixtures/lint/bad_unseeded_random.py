"""Lint fixture: must trigger the ``unseeded-random`` rule."""

import random


def jitter():
    return random.random()
