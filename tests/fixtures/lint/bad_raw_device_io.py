"""Lint fixture: must trigger the ``raw-device-io`` rule."""


def poke(device):
    device.write(0, b"x")
