"""Lint fixture: a stray ``perf_counter`` outside ``repro.obs.prof``
must still trip the ``wall-clock`` rule (both spellings)."""

import time
from time import perf_counter_ns


def stamp():
    return time.perf_counter()


def stamp_ns():
    return perf_counter_ns()
