"""Lint fixture: must trigger the ``dict-order`` rule.

Standalone fixture files are linted with the strictest profile, so the
serialization-path rule applies here.
"""


def serialize(table):
    out = []
    for key in table.keys():
        out.append(key)
    return out
