"""Lint fixture: must trigger the ``mutable-default`` rule."""


def gather(items=[]):
    return items
