"""Lint fixture: must trigger the ``wall-clock`` rule."""

import time


def stamp():
    return time.time()
