"""Lint fixture: must trigger the ``str-key`` rule."""


def touch(tree):
    tree.put("key", b"value")
