"""Lint fixture: must trigger NO rule (false-positive guard).

Exercises the near-miss shapes of every rule: a seeded RNG, sorted dict
iteration, bytes keys, immutable defaults, and I/O through a wrapper.
"""

import random


def deterministic(seed):
    rng = random.Random(seed)
    return rng.random()


def serialize(table):
    return [key for key in sorted(table.keys())]


def touch(tree):
    tree.put(b"key", b"value")


def gather(items=None):
    return list(items or ())


def write_through(storage):
    storage.write("meta.db", 0, b"x")
