"""recovery-reads-durable fixture: recovery peeks at volatile state."""

from typing import List


class BlockDevice:
    def unflushed(self) -> List[bytes]:
        raise NotImplementedError


class BeTree:
    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError


class RecoveringEnv:
    def __init__(self, device: BlockDevice, tree: BeTree) -> None:
        self.device = device
        self.tree = tree

    def resolve_intents(self) -> None:
        for data in self.device.unflushed():  # line 22: volatile read
            self.tree.put(data, data)  # recovery re-apply: no write-ahead
