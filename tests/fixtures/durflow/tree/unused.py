"""Waiver-hygiene fixture: a dead waiver and an empty-reason waiver."""


def noop() -> None:
    return None  # durflow: allow[stale waiver kept to exercise hygiene]


def empty() -> None:
    return None  # durflow: allow[]
