"""write-ahead fixture: tree mutations that skip the WAL append."""

from typing import List


class Southbound:
    def __init__(self) -> None:
        self.name = "sfl"

    def write(self, name: str, off: int, data: bytes) -> None:
        raise NotImplementedError

    def sync(self, name: str) -> None:
        raise NotImplementedError

    def discard(self, name: str, off: int, ln: int) -> None:
        raise NotImplementedError


class WriteAheadLog:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage

    def append(self, op: int, key: bytes, value: bytes) -> int:
        raise NotImplementedError

    def flush(self, durable: bool = True) -> None:
        self.storage.write("log", 0, b"")
        if durable:
            self.storage.sync("log")


class BeTree:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage

    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError


class KVEnv:
    def __init__(self, storage: Southbound) -> None:
        self.wal = WriteAheadLog(storage)
        self.tree = BeTree(storage)

    def insert(self, key: bytes, value: bytes, log: bool = True) -> None:
        if log:
            self.wal.append(1, key, value)
        self.tree.put(key, value)

    def sync(self) -> None:
        self.wal.flush(durable=True)


def apply_batch(tree: BeTree, items: List[bytes]) -> None:
    for key in items:
        tree.put(key, key)  # line 60: unlogged mutation


def fast_insert(env: KVEnv, key: bytes) -> None:
    env.insert(key, key, log=False)  # line 64: constant log=False
