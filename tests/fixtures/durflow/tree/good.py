"""Clean fixture: every discipline followed — zero findings."""

from typing import List


class BlockDevice:
    def flush(self) -> None:
        raise NotImplementedError


class Southbound:
    def __init__(self, device: BlockDevice) -> None:
        self.device = device

    def write(self, name: str, off: int, data: bytes) -> None:
        raise NotImplementedError

    def sync(self, name: str) -> None:
        self.device.flush()


class WriteAheadLog:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage

    def append(self, op: int, key: bytes, value: bytes) -> int:
        raise NotImplementedError

    def flush(self, durable: bool = True) -> None:
        self.storage.write("log", 0, b"")
        if durable:
            self.storage.sync("log")


class BeTree:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage

    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError

    def write_dirty_nodes(self) -> None:
        self.storage.write("data.db", 0, b"")


class KVEnv:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage
        self.wal = WriteAheadLog(storage)
        self.tree = BeTree(storage)

    def insert(self, key: bytes, value: bytes, log: bool = True) -> None:
        if log:
            self.wal.append(1, key, value)
        self.tree.put(key, value)

    def delete(self, key: bytes, log: bool = True) -> None:
        if log:
            self.wal.append(2, key, b"")
        self.tree.delete(key)

    def sync(self) -> None:
        self.wal.flush(durable=True)

    def checkpoint(self) -> None:
        self.tree.write_dirty_nodes()
        self.storage.sync("data.db")
        self.storage.write("superblock", 0, b"")
        self.storage.sync("superblock")


def pack_intent(key: bytes, value: bytes) -> bytes:
    raise NotImplementedError


class Coordinator:
    def __init__(self, envs: List[KVEnv]) -> None:
        self.envs = envs

    def two_phase(self, key: bytes, value: bytes) -> None:
        payload = pack_intent(key, value)
        coord = self.envs[0]
        coord.insert(key, payload)
        coord.sync()
        for i in sorted([0, 1]):
            self.envs[i].insert(key, value)
            self.envs[i].sync()
        coord.delete(key)
