"""intent-protocol fixture: coordinator out of declared order."""

from typing import List


class Southbound:
    def sync(self, name: str) -> None:
        raise NotImplementedError


class WriteAheadLog:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage

    def append(self, op: int, key: bytes, value: bytes) -> int:
        raise NotImplementedError

    def flush(self, durable: bool = True) -> None:
        if durable:
            self.storage.sync("log")


class BeTree:
    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError


class KVEnv:
    def __init__(self, storage: Southbound) -> None:
        self.wal = WriteAheadLog(storage)
        self.tree = BeTree(storage)

    def insert(self, key: bytes, value: bytes, log: bool = True) -> None:
        if log:
            self.wal.append(1, key, value)
        self.tree.put(key, value)

    def delete(self, key: bytes, log: bool = True) -> None:
        if log:
            self.wal.append(2, key, b"")
        self.tree.delete(key)

    def sync(self) -> None:
        self.wal.flush(durable=True)


def pack_intent(key: bytes, value: bytes) -> bytes:
    raise NotImplementedError


class Coordinator:
    def __init__(self, envs: List[KVEnv]) -> None:
        self.envs = envs

    def two_phase(self, key: bytes, value: bytes) -> None:
        payload = pack_intent(key, value)
        coord = self.envs[0]
        coord.insert(key, payload)
        for env in self.envs:  # unsorted fan-out
            env.insert(key, value)  # line 63: apply before durable intent
            env.sync()  # line 64: unsorted fan-out sync
        coord.delete(key)

    def fire_and_forget(self, key: bytes, value: bytes) -> None:  # line 67
        payload = pack_intent(key, value)
        self.envs[0].insert(key, payload)
