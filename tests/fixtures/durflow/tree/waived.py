"""Waived fixture: one finding suppressed with a justified waiver."""


class BeTree:
    def put(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError


def preload(tree: BeTree, key: bytes) -> None:
    tree.put(key, key)  # durflow: allow[preconditioning a scratch tree no recovery path reads]
