"""barrier-order fixture: torn checkpoint + unsynced acknowledgement."""


class BlockDevice:
    def flush(self) -> None:
        raise NotImplementedError


class Southbound:
    def __init__(self, device: BlockDevice) -> None:
        self.device = device

    def write(self, name: str, off: int, data: bytes) -> None:
        raise NotImplementedError

    def sync(self, name: str) -> None:
        self.device.flush()


class WriteAheadLog:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage

    def flush(self, durable: bool = True) -> None:
        self.storage.write("log", 0, b"")
        if durable:
            self.storage.sync("log")


class BeTree:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage

    def write_dirty_nodes(self) -> None:
        self.storage.write("data.db", 0, b"")


class TornCheckpointEnv:
    def __init__(self, storage: Southbound) -> None:
        self.storage = storage
        self.tree = BeTree(storage)

    def checkpoint(self) -> None:
        self.tree.write_dirty_nodes()
        self.storage.write("superblock", 0, b"")  # line 45: torn order
        self.storage.sync("superblock")


class UnsyncedAckEnv:
    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal

    def sync(self) -> None:  # line 53: acknowledges without a barrier
        self.wal.flush(durable=False)
