"""Other half of the import-cycle fixture."""

import fixpkg.cyc_a  # noqa: F401
