"""Half of the import-cycle fixture."""

import fixpkg.cyc_b  # noqa: F401
