"""Module in a package the manifest does not classify."""

VALUE = 2
