"""Low layer importing upward: the layer-violation fixture."""

import fixpkg.high.ok  # noqa: F401
