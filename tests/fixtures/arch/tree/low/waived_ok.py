"""Low layer importing upward, but with a justified waiver."""

import fixpkg.high.ok  # noqa: F401  # arch: allow[fixture: sanctioned upward edge]
