"""Bottom of the fixture stack; imports nothing."""

VALUE = 1
