"""High layer importing downward: legal."""

import fixpkg.low.base  # noqa: F401
