"""Legal downward import carrying a waiver that suppresses nothing."""

import fixpkg.low.base  # noqa: F401  # arch: allow[fixture: this waiver is dead]
