"""Uncharged byte move carrying a justified waiver."""

from flowpkg.store import ExtentStore


class Offline:
    def __init__(self, store: ExtentStore) -> None:
        self.store = store

    def probe(self) -> bytes:
        return self.store.read(0, 512)  # costflow: allow[fixture: offline probe, no timeline]
