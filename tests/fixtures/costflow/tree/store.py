"""Fixture stand-in for the extent store (matched by class name)."""


class ExtentStore:
    def read(self, offset: int, length: int) -> bytes:
        return b"\x00" * length

    def write(self, offset: int, data: bytes) -> None:
        pass
