"""Uncharged byte move: no charge locally, no charging caller."""

from flowpkg.store import ExtentStore


class Leaky:
    def __init__(self, store: ExtentStore) -> None:
        self.store = store

    def drain(self) -> bytes:
        return self.store.read(0, 4096)
