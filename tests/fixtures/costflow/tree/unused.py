"""A waiver on a line with no finding: must be reported as dead."""


def idle() -> int:
    return 1  # costflow: allow[fixture: this waiver is dead]
