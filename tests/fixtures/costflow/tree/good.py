"""Covered byte moves: the helper is dominated by a charging caller."""

from flowpkg.clock import SimClock
from flowpkg.store import ExtentStore


class Engine:
    def __init__(self, clock: SimClock, store: ExtentStore) -> None:
        self.clock = clock
        self.store = store

    def load(self, offset: int) -> bytes:
        # Moves bytes without charging — legal, because every caller
        # charges before delegating here.
        return self.store.read(offset, 4096)

    def fetch(self, offset: int) -> bytes:
        self.clock.cpu(0.001)
        return self.load(offset)
