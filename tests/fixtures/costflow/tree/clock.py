"""Fixture stand-in for the simulated clock (matched by class name)."""


class SimClock:
    def __init__(self) -> None:
        self.now = 0.0

    def cpu(self, seconds: float) -> None:
        self.now += seconds
