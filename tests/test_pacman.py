"""Unit tests for the PacMan range-message compaction (§4)."""

from repro.core.messages import Delete, Insert, RangeDelete
from repro.core.pacman import PacmanStats, compact


def run(messages):
    stats = PacmanStats()
    kept, comparisons = compact(list(messages), stats)
    return kept, comparisons, stats


class TestGobbling:
    def test_range_delete_eats_older_point_messages(self):
        msgs = [
            Insert(b"/d/a", b"1", msn=1),
            Insert(b"/d/b", b"2", msn=2),
            RangeDelete(b"/d/", b"/d0", msn=3),
        ]
        kept, _, stats = run(msgs)
        assert kept == [msgs[2]]
        assert stats.dropped_points == 2

    def test_newer_point_messages_survive(self):
        msgs = [
            RangeDelete(b"/d/", b"/d0", msn=1),
            Insert(b"/d/a", b"fresh", msn=2),
        ]
        kept, _, _ = run(msgs)
        assert len(kept) == 2

    def test_covered_range_delete_is_dropped(self):
        msgs = [
            RangeDelete(b"/d/x/", b"/d/x0", msn=1),
            RangeDelete(b"/d/", b"/d0", msn=2),
        ]
        kept, _, stats = run(msgs)
        assert kept == [msgs[1]]
        assert stats.dropped_ranges == 1

    def test_directory_wide_delete_gobbles_children(self):
        """The §4 scenario: per-file range deletes + a final directory
        range delete issued last."""
        msgs = [
            RangeDelete(b"/d/f1\x00", b"/d/f1\x01", msn=1),
            RangeDelete(b"/d/f2\x00", b"/d/f2\x01", msn=2),
            RangeDelete(b"/d/f3\x00", b"/d/f3\x01", msn=3),
            RangeDelete(b"/d/", b"/d0", msn=4),  # rmdir's coalescer
        ]
        kept, _, stats = run(msgs)
        assert kept == [msgs[3]]
        assert stats.dropped_ranges == 3


class TestPathology:
    def test_adjacent_non_overlapping_ranges_burn_cpu_for_nothing(self):
        """The rm -rf pathology: nothing is gobbled, comparisons are
        quadratic-ish anyway."""
        msgs = [
            RangeDelete(b"/d/f%03d\x00" % i, b"/d/f%03d\x01" % i, msn=i + 1)
            for i in range(20)
        ]
        kept, comparisons, stats = run(msgs)
        assert len(kept) == 20
        assert stats.dropped_ranges == 0
        assert comparisons >= 20 * 19  # every range vs every other msg

    def test_no_ranges_means_no_comparisons(self):
        msgs = [Insert(b"k%d" % i, b"v", msn=i + 1) for i in range(10)]
        kept, comparisons, _ = run(msgs)
        assert kept == msgs
        assert comparisons == 0


class TestMergeSafety:
    def test_overlapping_ranges_merge_when_safe(self):
        msgs = [
            RangeDelete(b"a", b"m", msn=1),
            RangeDelete(b"h", b"z", msn=2),
        ]
        kept, _, stats = run(msgs)
        assert len(kept) == 1
        assert kept[0].start == b"a" and kept[0].end == b"z"
        assert stats.merged_ranges == 1

    def test_no_merge_when_intervening_insert(self):
        """An insert between the two overlapping deletes targets the
        region only the older delete covers: merging would delete it."""
        msgs = [
            RangeDelete(b"a", b"m", msn=1),
            Insert(b"b", b"survivor", msn=2),
            RangeDelete(b"h", b"z", msn=3),
        ]
        kept, _, _ = run(msgs)
        # The insert must survive and the old range delete must remain
        # (un-merged), otherwise replaying would kill the insert.
        kinds = [m.kind for m in kept]
        assert "insert" in kinds
        starts = sorted(m.start for m in kept if m.is_range)
        assert starts == [b"a", b"h"]

    def test_merge_allowed_when_intervening_msg_fully_covered_by_newer(self):
        msgs = [
            RangeDelete(b"a", b"m", msn=1),
            Insert(b"j", b"doomed", msn=2),  # inside [h, z) of the newer
            RangeDelete(b"h", b"z", msn=3),
        ]
        kept, _, _ = run(msgs)
        # The insert is gobbled by the newer delete; ranges may merge.
        assert all(m.kind != "insert" for m in kept)


class TestOrderPreservation:
    def test_survivors_keep_msn_order(self):
        msgs = [
            Insert(b"x", b"1", msn=1),
            RangeDelete(b"a", b"c", msn=2),
            Insert(b"y", b"2", msn=3),
            Delete(b"z", msn=4),
        ]
        kept, _, _ = run(msgs)
        msns = [m.msn for m in kept]
        assert msns == sorted(msns)
