"""Crash-consistency and checkpointing tests for the KV environment."""

import pytest

from repro.check.fsck import fsck_device
from repro.core.config import BeTreeConfig
from repro.core.env import DATA, META, KVEnv
from repro.core.messages import PageFrame, value_bytes
from repro.device.block import BlockDevice
from repro.device.clock import SimClock
from repro.kmem.allocator import KernelAllocator
from repro.model.costs import CostModel
from repro.model.profiles import COMMODITY_SSD
from repro.storage.sfl import ImageLayout, SimpleFileLayer

MIB = 1 << 20

#: The carve every environment in this suite (and the failure-injection
#: suite) is built with; region offsets come from here, never from
#: hard-coded byte values.
LAYOUT = ImageLayout(log_size=8 * MIB, meta_size=64 * MIB)


def small_cfg(**over):
    cfg = BeTreeConfig()
    cfg.node_size = 8192
    cfg.basement_size = 2048
    cfg.buffer_size = 4096
    cfg.fanout = 4
    cfg.cache_bytes = 1 << 20
    for k, v in over.items():
        setattr(cfg, k, v)
    return cfg


def make_env(cfg=None, **kwargs):
    clock = SimClock()
    device = BlockDevice(clock, COMMODITY_SSD)
    costs = CostModel()
    alloc = KernelAllocator(clock, costs)
    storage = SimpleFileLayer(device, costs, log_size=8 * MIB, meta_size=64 * MIB)
    env = KVEnv(
        storage,
        clock,
        costs,
        alloc,
        cfg or small_cfg(),
        log_size=8 * MIB,
        meta_size=64 * MIB,
        data_size=256 * MIB,
        **kwargs,
    )
    return env, device


def reopen(device, cfg=None, fsck=True, **kwargs):
    image = device.crash_image()
    if fsck:
        # Every recovery in the suite must also pass the offline
        # checker: "recovers" means "recovers from a sane image".
        report = fsck_device(image, log_size=8 * MIB, meta_size=64 * MIB)
        report.raise_if_errors()
    costs = CostModel()
    alloc = KernelAllocator(image.clock, costs)
    storage = SimpleFileLayer(image, costs, log_size=8 * MIB, meta_size=64 * MIB)
    return KVEnv.open(
        storage,
        image.clock,
        costs,
        alloc,
        cfg or small_cfg(),
        log_size=8 * MIB,
        meta_size=64 * MIB,
        data_size=256 * MIB,
        **kwargs,
    )


class TestCheckpointRecovery:
    def test_recover_from_checkpoint(self):
        env, device = make_env()
        for i in range(500):
            env.insert(META, b"k%03d" % i, b"v%03d" % i)
        env.checkpoint()
        env2 = reopen(device)
        for i in range(0, 500, 37):
            assert env2.get(META, b"k%03d" % i) == b"v%03d" % i

    def test_recover_replays_log_after_checkpoint(self):
        env, device = make_env()
        for i in range(100):
            env.insert(META, b"a%03d" % i, b"old")
        env.checkpoint()
        for i in range(100):
            env.insert(META, b"b%03d" % i, b"new")
        env.delete(META, b"a000")
        env.range_delete(META, b"a050", b"a060")
        env.patch(META, b"a070", 0, b"PAT")
        env.sync()
        env2 = reopen(device)
        assert env2.recovered_entries > 0
        assert env2.get(META, b"b042") == b"new"
        assert env2.get(META, b"a000") is None
        assert env2.get(META, b"a055") is None
        assert env2.get(META, b"a070")[:3] == b"PAT"

    def test_unsynced_tail_may_be_lost_but_prefix_survives(self):
        env, device = make_env()
        env.insert(META, b"durable", b"yes")
        env.sync()
        env.insert(META, b"volatile", b"maybe")  # never flushed
        env2 = reopen(device)
        assert env2.get(META, b"durable") == b"yes"
        # The unsynced suffix is allowed to be lost; it must not
        # corrupt anything.
        assert env2.get(META, b"volatile") in (None, b"maybe")

    def test_clean_shutdown_skips_replay(self):
        env, device = make_env()
        env.insert(META, b"k", b"v")
        env.close()
        env2 = reopen(device)
        assert env2.recovered_entries == 0
        assert env2.get(META, b"k") == b"v"

    def test_superblock_ping_pong_survives_torn_checkpoint(self):
        env, device = make_env()
        env.insert(META, b"k", b"gen1")
        env.checkpoint()
        env.insert(META, b"k", b"gen2")
        env.checkpoint()
        # Tear the most recent superblock slot: a crash mid-write loses
        # the tail of the frame (payload CRC *and* completion stamp), so
        # recovery falls back to the older slot without an fsck error.
        import struct

        from repro.core.checkpoint import STAMP_SIZE, Superblock

        slot = env._sb_generation % 2
        base = LAYOUT.file_base("superblock") + slot * Superblock.SLOT_SIZE
        raw = bytearray(device.store.read(base, 4096))
        (length,) = struct.unpack_from("<I", raw, 0)
        frame_end = 4 + length + STAMP_SIZE
        keep = 4 + length // 2
        raw[keep:frame_end] = b"\x00" * (frame_end - keep)
        device.store.write(base, bytes(raw))
        env2 = reopen(device)
        # Falls back to the previous checkpoint; log replay reapplies.
        assert env2.get(META, b"k") in (b"gen1", b"gen2")

    def test_fresh_device_opens_empty(self):
        clock = SimClock()
        device = BlockDevice(clock, COMMODITY_SSD)
        env = reopen(device)
        assert env.get(META, b"anything") is None
        env.insert(META, b"k", b"v")
        assert env.get(META, b"k") == b"v"


class TestElidedValueLogging:
    def test_sync_escalates_to_checkpoint_for_elided_pages(self):
        env, device = make_env(log_page_values=False)
        # A short burst stays value-logged; a bulk stream elides.
        for i in range(80):
            env.insert(DATA, b"f\x00" + bytes([i]), PageFrame(b"\x7a" * 4096))
        assert env._elided_volatile
        before = env.checkpoints
        env.sync()
        assert env.checkpoints == before + 1
        assert not env._elided_volatile

    def test_small_bursts_are_value_logged(self):
        env, device = make_env(log_page_values=False)
        env.insert(DATA, b"g\x00\x01", PageFrame(b"\x11" * 4096))
        assert not env._elided_volatile
        before = env.checkpoints
        env.sync()  # plain log flush, no escalation
        assert env.checkpoints == before
        env2 = reopen(device, log_page_values=False)
        assert value_bytes(env2.get(DATA, b"g\x00\x01")) == b"\x11" * 4096

    def test_elided_pages_survive_crash_after_sync(self):
        env, device = make_env(log_page_values=False)
        for i in range(20):
            env.insert(DATA, b"f\x00" + bytes([i]), PageFrame(bytes([i]) * 4096))
        env.sync()
        env2 = reopen(device, log_page_values=False)
        for i in range(20):
            got = env2.get(DATA, b"f\x00" + bytes([i]))
            assert value_bytes(got) == bytes([i]) * 4096
        assert env2.recovery_lost == 0

    def test_value_logged_mode_replays_pages_from_log(self):
        env, device = make_env(log_page_values=True)
        env.checkpoint()
        env.insert(DATA, b"g\x00\x01", PageFrame(b"\x11" * 4096))
        env.sync()  # log flush only; page value is in the log
        env2 = reopen(device, log_page_values=True)
        assert value_bytes(env2.get(DATA, b"g\x00\x01")) == b"\x11" * 4096

    def test_metadata_sync_stays_cheap(self):
        env, device = make_env(log_page_values=False)
        env.insert(META, b"k", b"v")
        before = env.checkpoints
        env.sync()
        assert env.checkpoints == before  # no escalation for small values


class TestHousekeeping:
    def test_periodic_checkpoint_by_sim_time(self):
        cfg = small_cfg(checkpoint_period=0.001)
        env, device = make_env(cfg)
        before = env.checkpoints
        for i in range(3000):
            env.insert(META, b"k%05d" % i, b"v" * 64)
        assert env.checkpoints > before

    def test_log_full_forces_checkpoint(self):
        env, device = make_env()
        env.wal.region_size = 128 * 1024  # shrink the circular region
        before = env.checkpoints
        for i in range(3000):
            env.insert(META, b"k%05d" % i, b"v" * 64)
        assert env.checkpoints > before

    def test_cache_stays_within_budget(self):
        cfg = small_cfg(cache_bytes=64 * 1024)
        env, device = make_env(cfg)
        for i in range(4000):
            env.insert(META, b"key%05d" % i, b"value" * 10)
        assert env.cache.memory_used() <= cfg.cache_bytes * 1.5
        assert env.cache.evictions > 0
