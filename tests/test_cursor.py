"""Tests for the public cursor API."""

from repro.core.cursor import Cursor
from repro.core.env import META
from tests.test_tree import fresh_env


def populated(n=200):
    env = fresh_env()
    for i in range(n):
        env.insert(META, b"k%04d" % i, b"v%d" % i)
    return env


class TestCursor:
    def test_full_iteration_in_order(self):
        env = populated(150)
        keys = [k for k, _ in Cursor(env.meta)]
        assert keys == [b"k%04d" % i for i in range(150)]

    def test_bounded_range(self):
        env = populated(100)
        cur = Cursor(env.meta, start=b"k0010", end=b"k0020")
        keys = [k for k, _ in cur]
        assert keys == [b"k%04d" % i for i in range(10, 20)]

    def test_seek_forward_and_back(self):
        env = populated(100)
        cur = Cursor(env.meta)
        cur.seek(b"k0050")
        assert cur.next()[0] == b"k0050"
        cur.seek(b"k0010")
        assert cur.next()[0] == b"k0010"

    def test_peek_does_not_consume(self):
        env = populated(10)
        cur = Cursor(env.meta)
        assert cur.peek()[0] == b"k0000"
        assert cur.next()[0] == b"k0000"
        assert cur.next()[0] == b"k0001"

    def test_exhaustion(self):
        env = populated(3)
        cur = Cursor(env.meta)
        assert len(list(cur)) == 3
        assert cur.next() is None
        assert cur.peek() is None

    def test_sees_pending_deletes(self):
        env = populated(50)
        env.range_delete(META, b"k0010", b"k0040")
        keys = [k for k, _ in Cursor(env.meta)]
        assert len(keys) == 20
        assert b"k0025" not in keys

    def test_interleaved_mutation_behind_cursor(self):
        env = populated(100)
        cur = Cursor(env.meta)
        first = [cur.next()[0] for _ in range(10)]
        env.range_delete(META, b"k0000", b"k0050")
        rest = [k for k, _ in cur]
        # Rows buffered before the delete may still stream out; rows
        # fetched afterwards reflect the deletion.
        assert all(k >= b"k0050" for k in rest[Cursor.CHUNK :])
        assert rest[-1] == b"k0099"

    def test_empty_tree(self):
        env = fresh_env()
        assert list(Cursor(env.meta)) == []
