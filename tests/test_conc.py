"""Tests for ``repro.check.conc``: the static concurrency analyzer.

Same two families as the other whole-program analyses
(``tests/test_arch_costflow.py``):

* a fixture tree under ``tests/fixtures/conc/tree`` proves every rule
  *can* fire (a rule whose failing fixture passes checks nothing), and
  that waivers suppress exactly what they claim;
* self-tests prove the real ``src/repro`` tree is clean, so any new
  finding is a regression introduced by the change under review.

Plus the static/dynamic agreement suite this PR is really about:

* the deliberately deadlocking fixture is flagged statically as a
  ``lock-cycle`` AND raises ``SchedInvariantError`` when actually
  scheduled against a real mount — one fixture, both checkers;
* every lock-acquisition order observed at runtime by ``harness mt``
  (and by hypothesis-generated mailserver move keys) is an edge of the
  static lock graph — the graph is a sound over-approximation.
"""

import importlib.util
import json
import os

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.betrfs.filesystem import make_betrfs
from repro.check import arch, conc, lint
from repro.check.errors import SchedInvariantError
from repro.harness.mt import run_mt
from repro.sched import Scheduler
from repro.workloads.mailserver_mt import _folder_key
from repro.workloads.scale import SMOKE_SCALE

CONC_TREE = os.path.join(os.path.dirname(__file__), "fixtures", "conc", "tree")

#: Layer manifest for the conc fixture tree (top -> bottom).
FIX_MANIFEST = (
    ("scripts", ("concpkg.scripts",)),
    ("engine", ("concpkg.engine",)),
)

#: Signal ownership for the fixture tree: ``tree_io`` belongs to the
#: lower ``engine`` layer, so a fire up in ``scripts`` is misplaced.
FIX_SIGNALS = {"tree_io": "engine", "fsync": "scripts"}

_CACHE = {}


def _fixture_report():
    if "fixture" not in _CACHE:
        _CACHE["fixture"] = conc.analyze(
            root=CONC_TREE,
            package="concpkg",
            manifest=FIX_MANIFEST,
            signal_layers=FIX_SIGNALS,
        )
    return _CACHE["fixture"]


def _real_report():
    if "real" not in _CACHE:
        _CACHE["real"] = conc.analyze()
    return _CACHE["real"]


def _by_rule(report):
    grouped = {}
    for violation in report.violations:
        grouped.setdefault(violation.rule, []).append(violation)
    return grouped


# ======================================================================
# Fixture tree: every rule fires, and only where it should
# ======================================================================
class TestConcFixtures:
    def test_every_rule_fires(self):
        grouped = _by_rule(_fixture_report())
        assert set(grouped) == {
            "lock-cycle",
            "critical-yield",
            "lock-leak",
            "signal-misplaced",
            "signal-unguarded",
            "conc-impure",
            "unused-waiver",
        }, [v.render() for v in _fixture_report().violations]

    def test_lock_cycle_fixtures(self):
        """Four distinct cycle shapes: explicit AB/BA, the unsorted
        loop (wildcard self-edge), the unsorted cross-shard pair (the
        ``shard:`` f-string class), and the runtime-deadlock twin."""
        cycles = _by_rule(_fixture_report())["lock-cycle"]
        anchors = sorted(
            (os.path.basename(v.path), v.line) for v in cycles
        )
        assert anchors == [
            ("bad_cycle.py", 11),
            ("bad_unsorted.py", 12),
            ("bad_xshard.py", 12),
            ("deadlock_workload.py", 24),
        ], [v.render() for v in cycles]

    def test_xshard_cycle_names_the_shard_class(self):
        [v] = [
            v
            for v in _by_rule(_fixture_report())["lock-cycle"]
            if v.path.endswith("bad_xshard.py")
        ]
        assert "shard:" in v.message

    def test_cycle_message_names_both_locks_and_chain(self):
        [v] = [
            v
            for v in _by_rule(_fixture_report())["lock-cycle"]
            if v.path.endswith("bad_cycle.py")
        ]
        assert "order:a" in v.message and "order:b" in v.message

    def test_critical_yield(self):
        [v] = _by_rule(_fixture_report())["critical-yield"]
        assert v.path.endswith("bad_critical_yield.py") and v.line == 11

    def test_lock_leak(self):
        [v] = _by_rule(_fixture_report())["lock-leak"]
        assert v.path.endswith("bad_lock_leak.py") and v.line == 11
        assert "leak:1" in v.message

    def test_signal_misplaced(self):
        [v] = _by_rule(_fixture_report())["signal-misplaced"]
        assert v.path.endswith("bad_signal_layer.py") and v.line == 17
        assert "tree_io" in v.message and "engine" in v.message

    def test_signal_unguarded(self):
        [v] = _by_rule(_fixture_report())["signal-unguarded"]
        assert v.path.endswith("bad_signal_unguarded.py") and v.line == 12

    def test_impure_session_path(self):
        [v] = _by_rule(_fixture_report())["conc-impure"]
        assert v.path.endswith("bad_impure.py") and v.line == 23
        # Evidence: the call chain from the session entry point.
        assert "run" in v.message and "_cheat" in v.message

    def test_clean_fixtures_stay_clean(self):
        """good.py and engine/core.py exercise every *correct* idiom
        (sorted loop, helper key builder, try/finally critical section,
        local-variable signal guard) and must produce nothing."""
        for violation in _fixture_report().violations:
            assert not violation.path.endswith("good.py"), violation.render()
            assert not violation.path.endswith("core.py"), violation.render()

    def test_waiver_suppresses_exactly_one_finding(self):
        report = _fixture_report()
        for violation in report.violations:
            assert not violation.path.endswith("waived.py"), violation.render()
        used = [w for w in report.waivers if "waived.py:11" in w]
        assert len(used) == 1, report.waivers
        assert "ownership is handed off" in used[0]

    def test_unused_waivers_flagged(self):
        unused = _by_rule(_fixture_report())["unused-waiver"]
        lines = sorted(
            v.line for v in unused if v.path.endswith("unused.py")
        )
        assert lines == [10, 14], [v.render() for v in unused]

    def test_fixture_lock_graph_shape(self):
        graph = _fixture_report().lock_graph
        assert set(graph.nodes) >= {
            "alpha", "beta", "g:", "order:a", "order:b", "shard:",
        }
        pairs = {(e.src, e.dst, e.ordered) for e in graph.edges}
        # The deadlock fixture contributes both directions, unordered.
        assert ("alpha", "beta", False) in pairs
        assert ("beta", "alpha", False) in pairs
        # good.py's sorted loop contributes the ordered self-edge.
        assert ("g:", "g:", True) in pairs


# ======================================================================
# Real tree: clean, and its graph matches the mailserver design
# ======================================================================
class TestRealTree:
    def test_real_tree_is_clean(self):
        report = _real_report()
        assert report.ok, [v.render() for v in report.violations]

    def test_real_tree_coverage(self):
        """The analyzer actually saw the tree: hundreds of functions,
        the mailserver acquire sites, the session-reachable slice."""
        report = _real_report()
        assert report.functions > 500
        assert report.acquire_sites >= 4
        assert report.signal_sites >= 6
        assert report.reachable >= 10

    def test_real_lock_graph_is_the_sorted_folder_loop(self):
        """src/repro holds the per-folder mail locks (plain and
        shard-namespaced) plus the single-held weblog locks, and every
        nested acquire follows the sorted-loop discipline."""
        graph = _real_report().lock_graph
        assert "folder:" in graph.nodes
        folder_edges = [
            e for e in graph.edges if e.src == "folder:" and e.dst == "folder:"
        ]
        assert folder_edges and all(e.ordered for e in folder_edges)
        # The sharded workloads register their f-string lock classes.
        assert "shard:" in graph.nodes
        assert "weblog:" in graph.nodes
        assert all(e.ordered for e in graph.edges), [
            (e.src, e.dst) for e in graph.edges if not e.ordered
        ]

    def test_lint_composes_conc(self):
        """``repro.check lint`` runs the concurrency pass too (tentpole
        wiring), and the composed run stays clean."""
        assert lint.main([]) == 0


# ======================================================================
# Static/dynamic agreement (satellite c): one fixture, both checkers
# ======================================================================
class TestDeadlockFixtureBothWays:
    def _load_workload(self):
        path = os.path.join(CONC_TREE, "scripts", "deadlock_workload.py")
        spec = importlib.util.spec_from_file_location("deadlock_workload", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_static_and_runtime_agree(self):
        # Statically: the opposite-order acquires are a lock-cycle.
        [static] = [
            v
            for v in _by_rule(_fixture_report())["lock-cycle"]
            if v.path.endswith("deadlock_workload.py")
        ]
        assert "alpha" in static.message and "beta" in static.message

        # Dynamically: the same two scripts, scheduled for real, stall
        # and trip the scheduler's all-blocked invariant.
        mod = self._load_workload()
        fs = make_betrfs("BetrFS v0.6")
        fs.vfs.mkdir("/spool")
        fs.vfs.create(mod.SPOOL)
        sched = Scheduler(fs, policy="fifo", seed=7)
        sched.spawn("fwd", lambda ctx: mod.forward(ctx, fs.vfs))
        sched.spawn("bwd", lambda ctx: mod.backward(ctx, fs.vfs))
        with pytest.raises(SchedInvariantError, match="stalled"):
            sched.run()

        # And the runtime-observed orders are exactly the static cycle.
        assert sorted(sched.lock_order) == [
            ("alpha", "beta"),
            ("beta", "alpha"),
        ]
        graph = _fixture_report().lock_graph
        for held, acquired in sched.lock_order:
            assert graph.covers(held, acquired), (held, acquired)


# ======================================================================
# Runtime cross-check: static graph covers observed orders
# ======================================================================
class TestStaticGraphCoversRuntime:
    def test_mt_smoke_orders_covered(self):
        """Acceptance criterion: every (held, acquired) pair recorded
        by a fixed-seed 16-session mt run is an edge of the static
        graph."""
        summary = run_mt(SMOKE_SCALE, sessions=16, seed=11, policy="fifo")
        observed = summary["lock_order"]
        assert observed, "contended mail mix must exercise nested locks"
        graph = _real_report().lock_graph
        uncovered = [
            (held, acquired)
            for held, acquired in observed
            if not graph.covers(held, acquired)
        ]
        assert not uncovered, uncovered

    def test_summary_lock_order_is_sorted_pairs(self):
        summary = run_mt(SMOKE_SCALE, sessions=4, seed=7)
        observed = summary["lock_order"]
        assert observed == sorted(observed)
        assert all(len(pair) == 2 for pair in observed)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=2,
            max_size=4,
            unique=True,
        )
    )
    def test_sorted_move_sequences_are_graph_edges(self, folders):
        """Satellite (d): any sorted mailserver move-path key sequence
        acquires in an order the static graph predicts."""
        graph = _real_report().lock_graph
        keys = sorted({_folder_key(f) for f in folders})
        held = []
        for key in keys:
            for prior in held:
                assert graph.covers(prior, key), (prior, key)
            held.append(key)


# ======================================================================
# CLI: conc subcommand, graph artifacts, baseline diffing
# ======================================================================
class TestConcCLI:
    def test_clean_run_exit_zero(self, capsys):
        assert conc.main([]) == 0
        out = capsys.readouterr().out
        assert "repro.check conc: clean" in out
        assert "acquire site(s)" in out

    def test_json_format_round_trips(self, capsys):
        assert conc.main(["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert payload["new_violations"] == 0
        assert payload["lock_graph"]["nodes"]
        assert payload["functions"] > 500

    def test_graph_out_writes_json_and_dot(self, tmp_path, capsys):
        prefix = str(tmp_path / "lock-graph")
        assert conc.main(["--graph-out", prefix]) == 0
        data = json.loads((tmp_path / "lock-graph.json").read_text())
        assert "folder:" in {node["class"] for node in data["nodes"]}
        dot = (tmp_path / "lock-graph.dot").read_text()
        assert dot.startswith("digraph") and "folder:" in dot

    def test_empty_baseline_passes_clean_tree(self, capsys):
        baseline = os.path.join(os.path.dirname(__file__), os.pardir,
                                "conc-baseline.json")
        assert conc.main(["--baseline", baseline]) == 0

    def test_bad_baseline_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        assert conc.main(["--baseline", str(bad)]) == 2

    def test_baseline_suffix_matching(self, tmp_path):
        """Baselined findings are keyed (rule, repo-relative path) so a
        committed baseline survives other checkout prefixes; line
        numbers deliberately don't participate."""
        report = _fixture_report()
        [leak] = [v for v in report.violations if v.rule == "lock-leak"]
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({
            "findings": [
                {"rule": "lock-leak",
                 "path": "fixtures/conc/tree/scripts/bad_lock_leak.py"},
            ],
        }))
        known = conc.load_baseline(str(baseline))
        assert conc._is_baselined(leak, known)
        others = [v for v in report.violations if v is not leak]
        assert not any(conc._is_baselined(v, known) for v in others)

    def test_committed_baseline_is_empty(self):
        """The repo ships with zero known findings; anything conc
        reports in CI is new by definition."""
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "conc-baseline.json")
        data = json.loads(open(path, encoding="utf-8").read())
        assert data["findings"] == []


# ======================================================================
# Satellites (a) and (b): sched lint posture + arch legend
# ======================================================================
class TestSatellites:
    def test_sched_has_no_bare_asserts(self):
        """Satellite (a): ``src/repro/sched`` uses ``require`` (guarded
        invariants) everywhere — zero bare ``assert`` statements."""
        sched_dir = os.path.join(lint.repo_root(), "sched")
        found = [
            v
            for v in lint.lint_paths([sched_dir], use_allowlist=False)
            if v.rule == "bare-assert"
        ]
        assert found == [], [v.render() for v in found]

    def test_arch_dot_legend_lists_sched(self):
        """Satellite (b): the arch dot legend documents the full layer
        stack, sched included, even when no module landed in a layer."""
        report = arch.analyze(
            root=CONC_TREE, manifest=FIX_MANIFEST, package="concpkg"
        )
        dot = report.to_dot()
        assert "cluster_legend" in dot
        legend_line = [ln for ln in dot.splitlines() if "legend" in ln and "label=" in ln]
        assert any("sched" in ln for ln in legend_line), dot
