"""Tests for the flash translation layer and TRIM plumbing."""

import random

import pytest

from repro.baselines.mount import make_baseline
from repro.betrfs.filesystem import MountOptions, make_betrfs
from repro.core.checkpoint import BlockManager
from repro.device.block import BlockDevice, ExtentStore
from repro.device.clock import SimClock
from repro.device.ftl import FlashTranslationLayer
from repro.model.profiles import (
    COMMODITY_HDD,
    COMMODITY_SSD,
    FTLGeometry,
    small_ftl_profile,
)

MIB = 1 << 20
PAGE = 4096


def make_ftl(capacity=4 * MIB, op_ratio=0.07, **kw) -> FlashTranslationLayer:
    return FlashTranslationLayer(
        FTLGeometry(op_ratio=op_ratio, **kw), capacity
    )


class TestFTLMapping:
    def test_fresh_device_wa_is_one(self):
        ftl = make_ftl()
        ftl.host_write(0, 64 * PAGE)
        assert ftl.write_amplification() == 1.0
        assert ftl.mapped_pages() == 64

    def test_valid_pages_conservation(self):
        """valid-page bitmaps and the logical map agree at all times."""
        ftl = make_ftl(capacity=2 * MIB)
        rng = random.Random(11)
        for step in range(4000):
            lpn = rng.randrange(ftl.logical_pages)
            if step % 7 == 3:
                ftl.trim(lpn * PAGE, PAGE)
            else:
                ftl.host_write(lpn * PAGE, PAGE)
            assert ftl.valid_pages() == ftl.mapped_pages()
        # No live page lost: every mapping resolves both directions.
        for lpn, ppn in ftl.map.items():
            assert ftl._page_lpn[ppn] == lpn

    def test_overwrite_invalidates_old_page(self):
        ftl = make_ftl()
        ftl.host_write(0, PAGE)
        first = ftl.map[0]
        ftl.host_write(0, PAGE)
        assert ftl.map[0] != first
        assert ftl.mapped_pages() == 1
        assert ftl.valid_pages() == 1

    def test_subpage_write_touches_whole_pages(self):
        ftl = make_ftl()
        ftl.host_write(PAGE - 2, 4)  # straddles pages 0 and 1
        assert ftl.mapped_pages() == 2

    def test_trim_unmaps_only_fully_covered_pages(self):
        ftl = make_ftl()
        ftl.host_write(0, 4 * PAGE)
        dropped = ftl.trim(PAGE // 2, 2 * PAGE)  # fully covers page 1 only
        assert dropped == 1
        assert ftl.mapped_pages() == 3
        assert ftl.stats.trimmed_pages == 1

    def test_out_of_space_raises(self):
        ftl = make_ftl(capacity=256 * 1024)
        with pytest.raises(RuntimeError):
            # Writing far beyond logical capacity must exhaust the
            # physical space rather than loop forever.
            for lpn in range(ftl.logical_pages * 16):
                ftl.host_write(lpn * PAGE, PAGE)


class TestGarbageCollection:
    def overwrite_randomly(self, ftl, ops, seed=5, trim_every=0):
        rng = random.Random(seed)
        n = ftl.logical_pages
        for i in range(ops):
            lpn = rng.randrange(n)
            ftl.host_write(lpn * PAGE, PAGE)
            if trim_every and i % trim_every == trim_every - 1:
                ftl.trim(rng.randrange(n) * PAGE, PAGE)

    def test_wa_exceeds_threshold_past_overprovisioning(self):
        """Random overwrite well past the OP space forces GC copies."""
        ftl = make_ftl(capacity=2 * MIB)
        self.overwrite_randomly(ftl, 3 * ftl.logical_pages)
        assert ftl.stats.gc_runs > 0
        assert ftl.write_amplification() > 1.5
        assert ftl.valid_pages() == ftl.mapped_pages()

    def test_wa_monotone_under_continued_overwrite(self):
        ftl = make_ftl(capacity=2 * MIB)
        self.overwrite_randomly(ftl, ftl.logical_pages)
        samples = []
        for round_ in range(4):
            self.overwrite_randomly(ftl, ftl.logical_pages, seed=round_)
            samples.append(ftl.write_amplification())
        assert all(b >= a - 1e-9 for a, b in zip(samples, samples[1:]))

    def test_gc_preserves_all_live_mappings(self):
        ftl = make_ftl(capacity=1 * MIB)
        self.overwrite_randomly(ftl, 4 * ftl.logical_pages)
        # Every logical page written must still map to a unique
        # physical page marked valid in its block's bitmap.
        seen = set()
        for lpn, ppn in ftl.map.items():
            assert ppn not in seen
            seen.add(ppn)
            block, idx = divmod(ppn, ftl.geom.pages_per_block)
            assert ftl._valid_mask[block] & (1 << idx)

    def test_trim_reduces_write_amplification(self):
        with_trim = make_ftl(capacity=2 * MIB)
        without = make_ftl(capacity=2 * MIB)
        ops = 3 * with_trim.logical_pages
        self.overwrite_randomly(without, ops)
        self.overwrite_randomly(with_trim, ops, trim_every=4)
        assert with_trim.write_amplification() < without.write_amplification()

    def test_gc_charges_time_and_erases(self):
        ftl = make_ftl(capacity=1 * MIB)
        seconds = 0.0
        rng = random.Random(3)
        for _ in range(4 * ftl.logical_pages):
            seconds += ftl.host_write(
                rng.randrange(ftl.logical_pages) * PAGE, PAGE
            )
        assert seconds > 0.0
        assert abs(seconds - ftl.stats.gc_time) < 1e-9
        assert ftl.stats.erases == ftl.stats.gc_runs > 0
        assert ftl.erase_count_max() >= 1
        assert ftl.erase_count_total() == ftl.stats.erases

    def test_age_fragments_without_accounting(self):
        ftl = make_ftl(capacity=2 * MIB)
        ftl.age(utilization=0.9, churn=0.5, seed=9)
        assert ftl.mapped_pages() == int(ftl.logical_pages * 0.9)
        # Accounting reset; wear preserved.
        assert ftl.stats.host_pages_written == 0
        assert ftl.stats.gc_time == 0.0
        assert ftl.write_amplification() == 1.0
        assert ftl.erase_count_total() > 0

    def test_clone_is_independent(self):
        ftl = make_ftl(capacity=1 * MIB)
        ftl.age(utilization=0.8, churn=0.3)
        twin = ftl.clone()
        assert twin.map == ftl.map
        assert twin.free_blocks() == ftl.free_blocks()
        ftl.host_write(0, PAGE)
        assert twin.stats.host_pages_written == 0
        assert twin.map != ftl.map or twin.map[0] != ftl.map[0]


class TestDeviceIntegration:
    def make_device(self, capacity=16 * MIB):
        clock = SimClock()
        return BlockDevice(clock, small_ftl_profile(capacity=capacity))

    def test_ssd_profile_has_ftl_hdd_does_not(self):
        clock = SimClock()
        assert BlockDevice(clock, COMMODITY_SSD).ftl is not None
        assert BlockDevice(SimClock(), COMMODITY_HDD).ftl is None

    def test_discard_charges_and_accounts(self):
        device = self.make_device()
        device.write(0, b"x" * (8 * PAGE))
        before = device.stats.snapshot()
        t0 = device.clock.now
        device.discard(0, 8 * PAGE)
        delta = device.stats.delta(before)
        assert delta.discards == 1
        assert delta.bytes_discarded == 8 * PAGE
        assert device.clock.now >= t0  # cmd overhead scheduled, not blocking
        assert device.ftl.mapped_pages() == 0

    def test_stats_delta_includes_discard_fields(self):
        device = self.make_device()
        snap = device.stats.snapshot()
        device.write(0, b"w" * PAGE)
        device.discard(0, PAGE)
        delta = device.stats.delta(snap)
        assert delta.discards == 1
        assert delta.bytes_discarded == PAGE
        assert snap.discards == 0  # snapshot is decoupled

    def test_aged_device_slower_than_fresh(self):
        """GC pauses on the aged device stretch the same write stream."""
        fresh = self.make_device(capacity=8 * MIB)
        aged = self.make_device(capacity=8 * MIB)
        aged.ftl.age(utilization=0.92, churn=0.6)

        def hammer(device):
            rng = random.Random(21)
            blocks = (4 * MIB) // PAGE
            start = device.clock.now
            for _ in range(3 * blocks):
                device.write(rng.randrange(blocks) * PAGE, b"y" * PAGE)
            return device.clock.now - start

        t_fresh = hammer(fresh)
        t_aged = hammer(aged)
        assert t_aged > t_fresh
        assert aged.ftl.stats.gc_time > 0.0

    def test_crash_image_carries_ftl_state(self):
        device = self.make_device()
        device.ftl.age(utilization=0.7, churn=0.4)
        device.write(0, b"payload")
        image = device.crash_image()
        assert image.read(0, 7) == b"payload"
        assert image.ftl is not None
        assert image.ftl.map == device.ftl.map
        assert image.ftl.erase_counts == device.ftl.erase_counts
        # Independent after the snapshot.
        device.write(PAGE, b"z" * PAGE)
        assert image.ftl.stats.host_pages_written != device.ftl.stats.host_pages_written

    def test_extent_store_snapshot_roundtrip(self):
        store = ExtentStore()
        store.write(0, b"head")
        store.write(100, b"tail")
        twin = ExtentStore.from_snapshot(store.snapshot())
        assert twin.read(0, 4) == b"head"
        assert twin.read(100, 4) == b"tail"
        twin.write(0, b"HEAD")
        assert store.read(0, 4) == b"head"


class TestBlockManagerTrimStaging:
    def test_extent_trimmed_only_after_two_commits(self):
        """A freed extent must survive one ping-pong fallback window."""
        mgr = BlockManager(1 * MIB)
        mgr.relocate(1, 4096)
        old = mgr.table[1]
        mgr.relocate(1, 4096)  # frees `old` at the next commit
        assert mgr.commit_checkpoint() == []
        assert mgr.commit_checkpoint() == [(old[0], 4096)]
        assert mgr.commit_checkpoint() == []

    def test_reused_extent_not_trimmed(self):
        mgr = BlockManager(1 * MIB)
        mgr.relocate(1, 4096)
        mgr.relocate(1, 4096)
        assert mgr.commit_checkpoint() == []
        # The freed extent is on the free list now; re-use it.
        mgr.relocate(2, 4096)
        assert mgr.commit_checkpoint() == []  # must NOT trim live data


class TestEndToEndTrim:
    def test_baseline_unlink_discards(self):
        mount = make_baseline("ext4", MountOptions(profile=COMMODITY_SSD))
        vfs = mount.vfs
        vfs.create("/f")
        vfs.write("/f", 0, b"d" * (64 * PAGE))
        vfs.fsync("/f")
        before = mount.device.stats.discards
        vfs.unlink("/f")
        assert mount.device.stats.discards > before

    def test_betrfs_checkpoint_path_discards(self):
        mount = make_betrfs("BetrFS v0.6", MountOptions(profile=COMMODITY_SSD))
        vfs = mount.vfs
        vfs.create("/f")
        for round_ in range(3):
            vfs.write("/f", 0, bytes([round_]) * (256 * 1024))
            vfs.fsync("/f")
            mount.env.checkpoint()
        # Log truncation and/or CoW extent reclamation reached the
        # device as TRIMs.
        assert mount.device.stats.discards > 0
        assert mount.device.ftl.stats.trimmed_pages > 0


class TestHarnessSmoke:
    def test_run_ftl_smoke(self):
        from repro.harness.ftl import run_ftl_smoke

        out = run_ftl_smoke(overwrite_ops=2048)
        assert out["write_amplification"] > 1.0
        assert out["gc_pause_count"] > 0
        assert out["gc_pause_p99_ms"] > 0.0
        assert out["discards"] > 0
