"""Tests for the wall-clock bench harness and its CI perf gate.

Covers the PR's acceptance criteria: schema-versioned summaries, two
same-seed runs byte-identical once volatile (wall/memory) fields are
stripped, ``--check`` passing against a self-blessed baseline and
failing cleanly against a synthetically inflated one, and the
layer-attribution profiler.
"""

import copy
import json
import os
import re

import pytest

from repro.harness import bench
from repro.harness.bench import (
    BENCH_WORKLOADS,
    SCHEMA,
    bless_baseline,
    check_against_baseline,
    load_baseline,
    run_bench,
    strip_volatile,
    to_json,
)
from repro.obs.prof import WallProfiler, layer_of_file, module_of_file, wall_ns
from repro.workloads.scale import SMOKE_SCALE

#: Cheapest two workloads; reps=1 and no memory rep keep tests fast.
FAST = dict(scale=SMOKE_SCALE, reps=1, memory=False, workloads=["mailserver"])


@pytest.fixture(scope="module")
def summary():
    """One shared fast bench run (module-scoped: runs are ~100 ms)."""
    return run_bench(**FAST)


# ======================================================================
# Summary shape + determinism
# ======================================================================
class TestBenchSummary:
    def test_schema_and_fields(self, summary):
        assert summary["schema"] == SCHEMA
        assert summary["scale"] == "smoke"
        entry = summary["workloads"]["mailserver"]
        assert entry["ops"] == SMOKE_SCALE.mail_ops
        assert entry["simulated_seconds"] > 0
        assert entry["wall_seconds"]["min"] <= entry["wall_seconds"]["median"]
        assert len(entry["wall_seconds"]["all"]) == 1
        assert entry["ops_per_wall_second"] > 0
        assert entry["ops_per_sim_second"] > 0
        assert entry["sim_deterministic"] is True

    def test_memory_rep_reports_peak(self):
        out = run_bench(
            scale=SMOKE_SCALE, reps=1, memory=True, workloads=["mailserver"]
        )
        peak = out["workloads"]["mailserver"]["peak_mem_bytes"]
        assert peak > 100_000  # a real workload allocates real memory

    def test_two_runs_byte_identical_after_strip(self, summary):
        """Satellite: same seed, same bytes — the deterministic core of
        the summary cannot depend on wall time or ambient state."""
        again = run_bench(**FAST)
        assert to_json(strip_volatile(summary)) == to_json(strip_volatile(again))
        # ... and stripping removed every volatile field.
        stripped = json.loads(to_json(strip_volatile(summary)))
        entry = stripped["workloads"]["mailserver"]
        assert "wall_seconds" not in entry
        assert "ops_per_wall_second" not in entry
        assert "peak_mem_bytes" not in entry
        assert entry["simulated_seconds"] > 0

    def test_multi_rep_sim_is_deterministic(self):
        out = run_bench(
            scale=SMOKE_SCALE, reps=2, memory=False, workloads=["mailserver"]
        )
        entry = out["workloads"]["mailserver"]
        assert entry["sim_deterministic"] is True
        assert len(entry["wall_seconds"]["all"]) == 2

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_bench(scale=SMOKE_SCALE, reps=1, workloads=["nope"])

    def test_workload_registry_names(self):
        names = {wl.name for wl in BENCH_WORKLOADS}
        assert names == {"tokubench", "mailserver", "mailserver_mt", "fig2a_tar"}


# ======================================================================
# Baseline gate
# ======================================================================
class TestBaselineGate:
    def test_self_blessed_baseline_passes(self, summary, tmp_path):
        path = str(tmp_path / "baseline.json")
        bless_baseline(summary, path)
        assert check_against_baseline(summary, load_baseline(path)) == []

    def test_inflated_baseline_fails_cleanly(self, summary, tmp_path):
        """Satellite: a baseline claiming the suite used to run a
        million times faster (and leaner) must trip the gate."""
        path = str(tmp_path / "baseline.json")
        bless_baseline(summary, path)
        baseline = load_baseline(path)
        blessed = baseline["scales"]["smoke"]["workloads"]["mailserver"]
        blessed["wall_seconds_median"] /= 1e6
        blessed["peak_mem_bytes"] = 1
        failures = check_against_baseline(summary, baseline)
        assert any("wall regression" in f for f in failures)
        # No memory field in this summary (memory=False) — no mem check.
        assert not any("peak-memory" in f for f in failures)

    def test_memory_regression_detected(self, tmp_path):
        out = run_bench(
            scale=SMOKE_SCALE, reps=1, memory=True, workloads=["mailserver"]
        )
        path = str(tmp_path / "baseline.json")
        bless_baseline(out, path)
        baseline = load_baseline(path)
        baseline["scales"]["smoke"]["workloads"]["mailserver"][
            "peak_mem_bytes"
        ] = 1
        failures = check_against_baseline(out, baseline)
        assert any("peak-memory regression" in f for f in failures)

    def test_sim_drift_detected(self, summary, tmp_path):
        path = str(tmp_path / "baseline.json")
        bless_baseline(summary, path)
        baseline = load_baseline(path)
        baseline["scales"]["smoke"]["workloads"]["mailserver"][
            "simulated_seconds"
        ] *= 1.01
        failures = check_against_baseline(summary, baseline)
        assert any("simulated-time drift" in f for f in failures)

    def test_ops_mismatch_detected(self, summary, tmp_path):
        path = str(tmp_path / "baseline.json")
        bless_baseline(summary, path)
        baseline = load_baseline(path)
        baseline["scales"]["smoke"]["workloads"]["mailserver"]["ops"] += 1
        failures = check_against_baseline(summary, baseline)
        assert any("op count" in f for f in failures)

    def test_missing_scale_section_reported(self, summary):
        failures = check_against_baseline(
            summary, {"schema": dict(SCHEMA), "scales": {}}
        )
        assert len(failures) == 1
        assert "no section for scale" in failures[0]

    def test_workload_set_drift_reported(self, summary, tmp_path):
        path = str(tmp_path / "baseline.json")
        bless_baseline(summary, path)
        baseline = load_baseline(path)
        baseline["scales"]["smoke"]["workloads"]["ghost"] = copy.deepcopy(
            baseline["scales"]["smoke"]["workloads"]["mailserver"]
        )
        failures = check_against_baseline(summary, baseline)
        assert any("missing from this run" in f for f in failures)

    def test_per_workload_tolerance_overrides_default(self, summary, tmp_path):
        path = str(tmp_path / "baseline.json")
        bless_baseline(summary, path)
        baseline = load_baseline(path)
        blessed = baseline["scales"]["smoke"]["workloads"]["mailserver"]
        blessed["wall_seconds_median"] /= 10.0  # 10x over default budget
        baseline["tolerances"]["mailserver"] = {"wall_ratio": 1e9}
        assert check_against_baseline(summary, baseline) == []

    def test_committed_baseline_is_valid_and_covers_smoke(self):
        """The repo's committed baseline must parse, carry the current
        schema, and gate every bench workload at the CI (smoke) scale."""
        baseline = load_baseline()
        assert baseline["schema"] == SCHEMA
        smoke = baseline["scales"]["smoke"]["workloads"]
        assert set(smoke) == {wl.name for wl in BENCH_WORKLOADS}
        for entry in smoke.values():
            assert entry["wall_seconds_median"] > 0
            assert entry["simulated_seconds"] > 0

    def test_cli_check_exits_nonzero_on_inflated_baseline(self, tmp_path, capsys):
        """End-to-end: the perf gate's exit-code contract."""
        from repro.harness.__main__ import main

        out = run_bench(
            scale=SMOKE_SCALE, reps=1, memory=True, workloads=["mailserver"]
        )
        path = str(tmp_path / "baseline.json")
        bless_baseline(out, path)
        baseline = load_baseline(path)
        baseline["scales"]["smoke"]["workloads"]["mailserver"][
            "wall_seconds_median"
        ] /= 1e6
        with open(path, "w") as fh:
            fh.write(to_json(baseline))
        rc = main(
            [
                "bench", "--scale", "smoke", "--reps", "1", "--quiet",
                "--workloads", "mailserver", "--check", "--baseline", path,
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "PERF REGRESSION" in captured.err

    def test_cli_emits_artifact(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        rc = main(
            [
                "bench", "--scale", "smoke", "--reps", "1", "--quiet",
                "--workloads", "mailserver", "--out", str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        path = tmp_path / "BENCH_smoke.json"
        assert path.exists()
        artifact = json.loads(path.read_text())
        assert artifact["schema"] == SCHEMA
        assert "mailserver" in artifact["workloads"]


# ======================================================================
# Profiler layer attribution
# ======================================================================
class TestWallProfiler:
    def test_layer_of_file_maps_package_paths(self):
        root = os.path.dirname(bench.__file__)  # src/repro/harness
        pkg = os.path.dirname(root)  # src/repro
        assert layer_of_file(os.path.join(pkg, "core", "tree.py")) == "core"
        assert layer_of_file(os.path.join(pkg, "device", "block.py")) == "device"
        assert layer_of_file(os.path.join(pkg, "check", "errors.py")) == "errors"
        assert layer_of_file(os.path.join(pkg, "obs", "prof.py")) == "obs"
        assert layer_of_file("~") == "(builtin)"
        assert layer_of_file("/usr/lib/python3/json/__init__.py") == "(other)"
        assert module_of_file(os.path.join(pkg, "core", "tree.py")) == (
            "repro.core.tree"
        )

    def test_profile_attributes_wall_time_to_layers(self):
        prof = WallProfiler()
        with prof:
            run_bench(**FAST)
        table = {row["layer"]: row for row in prof.layer_table()}
        # A real workload must show self time in the simulated stack.
        assert "core" in table and table["core"]["tottime"] > 0
        assert "vfs" in table
        assert table["core"]["calls"] > 100
        top = prof.top_functions(5)
        assert len(top) == 5
        assert top[0]["tottime"] >= top[-1]["tottime"]

    def test_collapsed_stack_format(self):
        prof = WallProfiler()
        with prof:
            run_bench(**FAST)
        lines = prof.collapsed().splitlines()
        assert lines
        pat = re.compile(r"^[^;]+;[^;]+;.+ \d+$")
        for line in lines:
            assert pat.match(line), line

    def test_wall_ns_is_monotonic(self):
        a = wall_ns()
        b = wall_ns()
        assert b >= a
