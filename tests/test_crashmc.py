"""Tests for repro.crashmc: the volatile write cache and the
crash-state exploration engine."""

import json
import random

import pytest

from repro.core.env import META
from repro.crashmc import (
    CrashExplorer,
    CrashPlan,
    Op,
    Oracle,
    enumerate_plans,
    load_repro,
    media_plans,
    replay_repro,
    repro_dict,
    run_case,
    save_repro,
    shrink_plan,
)
from repro.crashmc.explore import CLEAN, DETECTED, VIOLATION, _Stack
from repro.device.block import BlockDevice, CacheRecord, MediaError
from repro.device.clock import SimClock
from repro.model.profiles import COMMODITY_SSD

MIB = 1 << 20


def raw_device(volatile=True):
    return BlockDevice(SimClock(), COMMODITY_SSD, volatile_cache=volatile)


# ======================================================================
# Volatile-cache epoch recording (device layer)
# ======================================================================
class TestEpochRecording:
    def test_writes_group_into_barrier_epochs(self):
        dev = raw_device()
        dev.write(0, b"a" * 512)
        dev.write(4096, b"b" * 512)
        dev.flush()
        dev.write(8192, b"c" * 512)
        assert dev.sealed_epochs() == 1
        sealed = dev.epoch_records(0)
        assert [r.offset for r in sealed] == [0, 4096]
        assert [r.seq for r in sealed] == [0, 1]
        open_recs = dev.unflushed()
        assert [r.offset for r in open_recs] == [8192]
        assert open_recs[0].seq == 2

    def test_discards_are_recorded(self):
        dev = raw_device()
        dev.write(0, b"x" * 4096)
        dev.discard(0, 4096)
        kinds = [r.kind for r in dev.unflushed()]
        assert kinds == [CacheRecord.WRITE, CacheRecord.DISCARD]
        assert dev.unflushed()[1].length == 4096

    def test_enable_is_idempotent_and_snapshots_base(self):
        dev = raw_device(volatile=False)
        dev.write(0, b"pre-enable")
        dev.enable_volatile_cache()
        dev.enable_volatile_cache()
        dev.write(4096, b"post")
        # The pre-enable write is part of the durable base: a crash
        # dropping everything still has it.
        image = dev.crash_image(CrashPlan())
        assert image.store.read(0, 10) == b"pre-enable"
        assert image.store.read(4096, 4) == b"\x00" * 4

    def test_plan_requires_volatile_mode(self):
        dev = raw_device(volatile=False)
        with pytest.raises(ValueError, match="volatile-cache"):
            dev.crash_image(CrashPlan())

    def test_plan_epoch_out_of_range(self):
        dev = raw_device()
        dev.write(0, b"x")
        dev.flush()
        with pytest.raises(ValueError, match="out of range"):
            dev.crash_image(CrashPlan(epoch=5))

    def test_volatile_mode_is_a_pure_observer(self):
        """Same op sequence, durable vs volatile device: bit-identical
        contents, stats, and simulated time."""

        def drive(dev):
            for i in range(40):
                dev.write(i * 8192, bytes([i]) * 4096)
                if i % 7 == 0:
                    dev.flush()
            dev.discard(8192, 4096)
            dev.read(0, 4096)
            dev.flush()
            return dev

        a = drive(raw_device(volatile=False))
        b = drive(raw_device(volatile=True))
        assert a.store.snapshot() == b.store.snapshot()
        assert a.clock.now == b.clock.now
        assert (a.stats.reads, a.stats.writes, a.stats.flushes) == (
            b.stats.reads, b.stats.writes, b.stats.flushes
        )


# ======================================================================
# Crash-image materialization
# ======================================================================
class TestCrashImages:
    def test_selected_subset_and_losses(self):
        dev = raw_device()
        dev.write(0, b"A" * 512)
        dev.write(4096, b"B" * 512)
        dev.write(8192, b"C" * 512)
        seqs = [r.seq for r in dev.unflushed()]
        image = dev.crash_image(CrashPlan(selected=(seqs[0], seqs[2])))
        assert image.store.read(0, 3) == b"AAA"
        assert image.store.read(4096, 3) == b"\x00\x00\x00"  # lost
        assert image.store.read(8192, 3) == b"CCC"
        # The live device is unperturbed.
        assert dev.store.read(4096, 3) == b"BBB"

    def test_earlier_epochs_are_always_durable(self):
        dev = raw_device()
        dev.write(0, b"first")
        dev.flush()
        dev.write(4096, b"second")
        dev.flush()
        dev.write(8192, b"third")
        # Crash at epoch 1 with nothing selected: epoch 0 durable,
        # epoch 1 and the open epoch lost.
        image = dev.crash_image(CrashPlan(selected=(), epoch=1))
        assert image.store.read(0, 5) == b"first"
        assert image.store.read(4096, 6) == b"\x00" * 6
        assert image.store.read(8192, 5) == b"\x00" * 5

    def test_tearing_is_sector_granular(self):
        dev = raw_device()
        sector = dev.profile.sector
        payload = b"1" * sector + b"2" * sector + b"3" * sector
        dev.write(0, payload)
        seq = dev.unflushed()[0].seq
        image = dev.crash_image(
            CrashPlan(selected=(seq,), torn_tail_sectors=1)
        )
        assert image.store.read(0, sector) == b"1" * sector
        assert image.store.read(sector, 2 * sector) == b"\x00" * (2 * sector)

    def test_bitflip_and_bad_sector_faults(self):
        dev = raw_device()
        sector = dev.profile.sector
        dev.write(0, b"\x00" * sector * 2)
        dev.flush()
        seqless = CrashPlan(bitflips=((10, 0x40),), bad_sectors=(1,))
        image = dev.crash_image(seqless)
        assert image.store.read(10, 1) == b"\x40"
        image.read(0, 16)  # sector 0 still readable
        with pytest.raises(MediaError):
            image.read(sector, 16)
        # fsck-style direct store access bypasses the read path.
        assert len(image.store.read(sector, 16)) == 16

    def test_planless_image_keeps_historical_behaviour(self):
        dev = raw_device()
        dev.write(0, b"x" * 512)  # unflushed
        image = dev.crash_image()
        # Durable-cache semantics: everything accepted is in the image.
        assert image.store.read(0, 3) == b"xxx"


# ======================================================================
# Plan enumeration
# ======================================================================
def fake_records(n, size=512):
    return [
        CacheRecord(seq, CacheRecord.WRITE, seq * 8192, b"x" * size)
        for seq in range(n)
    ]


class TestEnumeration:
    def test_small_epochs_are_exhaustive(self):
        records = fake_records(4)
        plans = enumerate_plans(
            records, epoch=None, sector=4096,
            rng=random.Random(1), exhaustive_k=6,
        )
        subsets = {p.selected for p in plans if p.torn_tail_sectors is None}
        assert len(subsets) == 2 ** 4  # every subset, empty included

    def test_large_epochs_are_sampled_and_bounded(self):
        records = fake_records(20)
        plans = enumerate_plans(
            records, epoch=2, sector=4096,
            rng=random.Random(7), exhaustive_k=6, samples=24,
        )
        # prefixes (21) + <=24 samples + tear variants; far below 2^20.
        assert len(plans) < 200
        prefix_sets = [p.selected for p in plans if p.kind == "prefix"]
        assert () in prefix_sets
        assert tuple(range(20)) in prefix_sets
        assert all(p.epoch == 2 for p in plans)

    def test_enumeration_is_deterministic(self):
        records = fake_records(12)
        a = enumerate_plans(
            records, epoch=None, sector=4096, rng=random.Random(3)
        )
        b = enumerate_plans(
            records, epoch=None, sector=4096, rng=random.Random(3)
        )
        assert [p.key() for p in a] == [p.key() for p in b]

    def test_tear_variants_only_for_multisector_writes(self):
        sector = 4096
        small = fake_records(2, size=512)  # single-sector: cannot tear
        plans = enumerate_plans(
            small, epoch=None, sector=sector, rng=random.Random(0)
        )
        assert not any(p.torn_tail_sectors is not None for p in plans)
        big = fake_records(2, size=4 * sector)
        plans = enumerate_plans(
            big, epoch=None, sector=sector, rng=random.Random(0)
        )
        torn = [p for p in plans if p.torn_tail_sectors is not None]
        assert torn
        assert all(p.torn_tail_sectors in (1, 2) for p in torn)

    def test_media_plans_stay_inside_regions(self):
        plans = media_plans(
            [(1000, 500), (8000, 100)],
            sector=512, rng=random.Random(5), count=12,
        )
        assert len(plans) == 12
        for p in plans:
            assert p.is_media_fault
            for off, _mask in p.bitflips:
                assert 1000 <= off < 1500 or 8000 <= off < 8100
            for s in p.bad_sectors:
                assert 1000 <= s * 512 + 511 and s * 512 < 8100


# ======================================================================
# Oracle
# ======================================================================
class TestOracle:
    def drive(self):
        o = Oracle()
        for op in [
            Op("insert", META, b"a", b"1"),
            Op("insert", META, b"b", b"2"),
            Op("sync"),
        ]:
            o.begin(op)
            o.commit(op)
        for op in [
            Op("insert", META, b"c", b"3"),
            Op("delete", META, b"a"),
        ]:
            o.begin(op)
            o.commit(op)
        return o

    def test_accepts_every_pending_prefix(self):
        o = self.drive()
        states = [
            {b"a": b"1", b"b": b"2"},                 # lost both pending
            {b"a": b"1", b"b": b"2", b"c": b"3"},     # lost the delete
            {b"b": b"2", b"c": b"3"},                 # lost nothing
        ]
        for state in states:
            verdict = o.check(lambda t, k, s=state: s.get(k))
            assert verdict.ok, (state, verdict.detail)

    def test_rejects_lost_synced_data(self):
        o = self.drive()
        verdict = o.check(lambda t, k: {b"c": b"3"}.get(k))  # b vanished
        assert not verdict.ok
        assert b"b" in verdict.detail.encode() or "b'b'" in verdict.detail

    def test_rejects_non_prefix_application(self):
        o = self.drive()
        # The delete applied without the preceding insert of c.
        verdict = o.check(lambda t, k: {b"b": b"2"}.get(k))
        assert not verdict.ok

    def test_patch_zero_extends_like_the_real_codec(self):
        o = Oracle()
        for op in [
            Op("insert", META, b"p", b"AB"),
            Op("patch", META, b"p", b"ZZ", offset=4),
            Op("sync"),
        ]:
            o.begin(op)
            o.commit(op)
        verdict = o.check(lambda t, k: {b"p": b"AB\x00\x00ZZ"}.get(k))
        assert verdict.ok, verdict.detail

    def test_range_delete_in_models(self):
        o = Oracle()
        for op in [
            Op("insert", META, b"x1", b"1"),
            Op("insert", META, b"x2", b"2"),
            Op("sync"),
            Op("range_delete", META, b"x1", end=b"x2"),  # kills x1 only
        ]:
            o.begin(op)
            o.commit(op)
        ok_states = [{b"x1": b"1", b"x2": b"2"}, {b"x2": b"2"}]
        for state in ok_states:
            assert o.check(lambda t, k, s=state: s.get(k)).ok
        assert not o.check(lambda t, k: {b"x1": b"1"}.get(k)).ok


# ======================================================================
# Shrinker
# ======================================================================
class TestShrinker:
    def test_shrinks_to_one_minimal(self):
        plan = CrashPlan(
            selected=(1, 2, 3, 4),
            torn_tail_sectors=2,
            bitflips=((100, 1), (200, 2)),
            bad_sectors=(7, 9),
        )

        def still_fails(p):
            return 3 in p.selected and len(p.bitflips) >= 1

        shrunk = shrink_plan(plan, still_fails)
        assert shrunk.selected == (3,)
        assert len(shrunk.bitflips) == 1
        assert shrunk.torn_tail_sectors is None
        assert shrunk.bad_sectors == ()
        # 1-minimal: removing anything else makes it pass.
        assert not still_fails(shrunk.without_seq(3))
        assert not still_fails(shrunk.without_bitflip(0))

    def test_respects_probe_budget(self):
        calls = []

        def still_fails(p):
            calls.append(p)
            return True

        shrink_plan(
            CrashPlan(selected=tuple(range(50))), still_fails, max_probes=10
        )
        assert len(calls) <= 11


# ======================================================================
# Plan serialization / repro files
# ======================================================================
class TestReproFiles:
    def test_plan_roundtrip(self):
        plan = CrashPlan(
            selected=(3, 1), epoch=2, torn_tail_sectors=1,
            bitflips=((9, 4),), bad_sectors=(5,), kind="torn",
        )
        back = CrashPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert back == plan
        assert back.selected == (1, 3)  # canonical order

    def test_save_load_replay(self, tmp_path):
        path = str(tmp_path / "repro.json")
        # An empty plan at the first op: everything lost, which must be
        # an acceptable (clean) crash state.
        save_repro(path, repro_dict("tokubench", 0, 0, CrashPlan()))
        repro = load_repro(path)
        result = replay_repro(repro)
        assert result.status == CLEAN, (result.stage, result.detail)

    def test_load_rejects_unknown_version(self, tmp_path):
        path = str(tmp_path / "repro.json")
        save_repro(path, {"version": 99})
        with pytest.raises(ValueError, match="version"):
            load_repro(path)


# ======================================================================
# Explorer end-to-end
# ======================================================================
class TestExplorer:
    def test_bounded_run_is_deterministic_and_clean(self):
        def run():
            return json.dumps(
                CrashExplorer(seed=3, budget=16).run().to_dict(),
                sort_keys=True,
            )

        a, b = run(), run()
        assert a == b
        summary = json.loads(a)
        assert summary["cases"] == 16
        assert summary["violations"] == 0
        assert len(summary["workloads"]) == 4

    def test_counters_track_cases(self):
        ex = CrashExplorer(seed=1, budget=10, workloads=("tokubench",))
        summary = ex.run()
        reg = ex.obs.registry
        assert reg.find("crashmc.cases", layer="crashmc").value == summary.cases
        assert reg.find("crashmc.crash_points", layer="crashmc").value > 0
        assert (
            reg.find("crashmc.violations", layer="crashmc").value
            == summary.violations
        )

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            CrashExplorer(seed=0, budget=1, workloads=("nope",))

    def test_run_case_flags_silent_data_loss(self):
        """A crash state that silently loses synced data must be a
        violation: wipe the whole device behind the oracle's back."""
        stack = _Stack()
        oracle = Oracle()
        for op in [Op("insert", META, b"k", b"v"), Op("checkpoint")]:
            oracle.begin(op)
            stack.apply(op)
            oracle.commit(op)
        # Rebuild the stack from scratch (empty device) while keeping
        # the oracle's belief that b"k" is durable.
        fresh = _Stack()
        result = run_case(fresh, oracle, CrashPlan())
        assert result.status == VIOLATION
        assert result.stage == "oracle"

    def test_harness_torture_cli(self, capsys):
        from repro.harness.__main__ import main as harness_main

        rc = harness_main(["torture", "--seed", "5", "--budget", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        summary = json.loads(out)
        assert summary["cases"] == 8
        assert summary["violations"] == 0


class TestSuperblockMediaFault:
    """Satellite regression: a flipped byte in the newest superblock
    slot must surface as DETECTED (fsck reports the valid-but-stale
    fallback) — never as a silent fallback to the older checkpoint."""

    def _stack_with_two_checkpoints(self):
        stack = _Stack()
        oracle = Oracle()
        ops = [
            Op("insert", META, b"alpha", b"one"),
            Op("checkpoint"),
            Op("insert", META, b"beta", b"two"),
            Op("checkpoint"),
        ]
        for op in ops:
            oracle.begin(op)
            stack.apply(op)
            oracle.commit(op)
        return stack, oracle

    def _newest_slot_base(self, stack):
        from repro.core.checkpoint import Superblock, _trim

        image = stack.device.crash_image()
        slot_size = Superblock.SLOT_SIZE
        best = None
        for idx in (0, 1):
            raw = image.store.read(idx * slot_size, slot_size)
            decoded = Superblock.deserialize(_trim(raw))
            if decoded is not None and (
                best is None or decoded.generation > best[1]
            ):
                best = (idx * slot_size, decoded.generation)
        assert best is not None, "no decodable superblock slot"
        return best[0]

    def test_flip_in_newest_slot_is_detected(self):
        stack, oracle = self._stack_with_two_checkpoints()
        base = self._newest_slot_base(stack)
        plan = CrashPlan(bitflips=((base + 20, 0x01),))
        assert plan.is_media_fault
        result = run_case(stack, oracle, plan)
        assert result.status == DETECTED, (result.status, result.detail)
        assert result.stage == "fsck"
        assert "valid-but-stale" in result.detail

    def test_media_sweep_covers_the_superblock_region(self):
        """The sweep regions start at offset 0 now: a seeded run must
        be able to place a fault below log_base."""
        from repro.storage.sfl import SUPERBLOCK_SIZE

        rng = random.Random(0)
        plans = media_plans(
            [(0, SUPERBLOCK_SIZE)], sector=4096, rng=rng, count=8
        )
        assert plans
        for plan in plans:
            for off, _mask in plan.bitflips:
                assert 0 <= off < SUPERBLOCK_SIZE
            for sector in plan.bad_sectors:
                assert 0 <= sector * 4096 < SUPERBLOCK_SIZE
