"""Round-trip and corruption tests for node serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (
    Delete,
    Insert,
    InsertByRef,
    PageFrame,
    Patch,
    RangeDelete,
)
from repro.core.node import InternalNode, LeafNode
from repro.core.serialize import (
    ChecksumError,
    decode_basement,
    decode_leaf_header,
    decode_node,
    serialize_node,
    verify_crc,
)


def make_leaf(n=30, page_values=False):
    leaf = LeafNode(7)
    for i in range(n):
        if page_values and i % 3 == 0:
            value = PageFrame(bytes([i % 256]) * 4096)
        else:
            value = b"value-%03d" % i
        leaf.apply(Insert(b"/common/prefix/k%03d" % i, value, msn=i + 1), 2048)
    return leaf


def make_internal():
    node = InternalNode(9, height=1)
    node.pivots = [b"/p/g", b"/p/q"]
    node.children = [100, 101, 102]
    node.enqueue(Insert(b"/p/a", b"small", msn=1))
    node.enqueue(Delete(b"/p/h", msn=2))
    node.enqueue(Patch(b"/p/r", 8, b"patchbytes", msn=3))
    node.enqueue(RangeDelete(b"/p/b", b"/p/c", msn=4))
    node.enqueue(Insert(b"/p/z", PageFrame(b"\x5a" * 4096), msn=5))
    return node


def assert_same_pairs(a: LeafNode, b: LeafNode):
    pa = [(k, bytes(v.data) if isinstance(v, PageFrame) else v, m)
          for bs in a.basements for k, v, m in bs.items_with_msn()]
    pb = [(k, bytes(v.data) if isinstance(v, PageFrame) else v, m)
          for bs in b.basements for k, v, m in bs.items_with_msn()]
    assert pa == pb


@pytest.mark.parametrize("aligned", [False, True])
@pytest.mark.parametrize("lifting", [False, True])
class TestLeafRoundtrip:
    def test_roundtrip(self, aligned, lifting):
        leaf = make_leaf(page_values=True)
        ser = serialize_node(leaf, aligned=aligned, lifting=lifting)
        back = decode_node(ser.data, aligned=aligned)
        assert isinstance(back, LeafNode)
        assert back.node_id == 7
        assert_same_pairs(leaf, back)

    def test_empty_leaf(self, aligned, lifting):
        leaf = LeafNode(3)
        ser = serialize_node(leaf, aligned=aligned, lifting=lifting)
        back = decode_node(ser.data, aligned=aligned)
        assert back.pair_count() == 0


@pytest.mark.parametrize("aligned", [False, True])
class TestInternalRoundtrip:
    def test_roundtrip(self, aligned):
        node = make_internal()
        ser = serialize_node(node, aligned=aligned, lifting=True)
        back = decode_node(ser.data, aligned=aligned)
        assert isinstance(back, InternalNode)
        assert back.pivots == node.pivots
        assert back.children == node.children
        assert len(back.buffer) == len(node.buffer)
        assert [m.msn for m in back.buffer] == [1, 2, 3, 4, 5]
        patch = back.buffer[2]
        assert isinstance(patch, Patch)
        assert patch.offset == 8 and patch.data == b"patchbytes"
        rd = back.buffer[3]
        assert isinstance(rd, RangeDelete)
        assert (rd.start, rd.end) == (b"/p/b", b"/p/c")
        page_msg = back.buffer[4]
        assert bytes(page_msg.value.data) == b"\x5a" * 4096

    def test_insert_by_ref_persists_page_contents(self, aligned):
        node = InternalNode(4, height=1)
        node.pivots = []
        node.children = [1]
        frame = PageFrame(b"\xab" * 4096)
        node.enqueue(InsertByRef(b"/k", frame, msn=1))
        ser = serialize_node(node, aligned=aligned, lifting=True)
        back = decode_node(ser.data, aligned=aligned)
        value = back.buffer[0].value
        assert bytes(value.data if isinstance(value, PageFrame) else value) == b"\xab" * 4096


class TestChecksums:
    def test_corruption_detected(self):
        leaf = make_leaf()
        ser = serialize_node(leaf, aligned=False, lifting=True)
        corrupted = bytearray(ser.data)
        corrupted[len(corrupted) // 2] ^= 0xFF
        with pytest.raises(ChecksumError):
            decode_node(bytes(corrupted), aligned=False)

    def test_verify_crc_ok(self):
        leaf = make_leaf()
        ser = serialize_node(leaf, aligned=False, lifting=True)
        verify_crc(ser.data)  # no raise


class TestAlignedLayout:
    def test_pages_land_on_aligned_offsets(self):
        leaf = make_leaf(page_values=True)
        ser = serialize_node(leaf, aligned=True, lifting=True)
        # Every full page's contents must be locatable at a 4 KiB
        # boundary in the serialized image.
        payload = ser.data
        found = 0
        for off in range(0, len(payload) - 4096, 4096):
            chunk = payload[off : off + 4096]
            if len(set(chunk)) == 1 and chunk[0] != 0:
                found += 1
        assert found >= 5
        assert ser.ref_bytes > 0
        assert ser.copied_bytes == 0

    def test_packed_layout_reports_copies(self):
        leaf = make_leaf(page_values=True)
        ser = serialize_node(leaf, aligned=False, lifting=True)
        assert ser.copied_bytes > 0
        assert ser.ref_bytes == 0


class TestPartialLeafAccess:
    def test_header_and_single_basement_decode(self):
        leaf = make_leaf(50)
        ser = serialize_node(leaf, aligned=False, lifting=True)
        header = decode_leaf_header(ser.data[:8192], aligned=False)
        assert header.node_id == 7
        assert len(header.basement_extents) == len(leaf.basements)
        assert header.basement_first_keys[0] == leaf.basements[0].first_key()
        # Decode just the second basement from its extent slice.
        off, ln = header.basement_extents[1]
        basement = decode_basement(
            ser.data[off : off + ln], header.lift_prefix, aligned=False
        )
        assert list(basement.items()) == list(leaf.basements[1].items())

    def test_lifting_shrinks_serialization(self):
        leaf = make_leaf(40)
        lifted = serialize_node(leaf, aligned=False, lifting=True)
        unlifted = serialize_node(leaf, aligned=False, lifting=False)
        assert len(lifted.data) < len(unlifted.data)


# ----------------------------------------------------------------------
# Property: arbitrary leaves round-trip in both layouts.
# ----------------------------------------------------------------------
pairs = st.dictionaries(
    st.binary(min_size=1, max_size=24),
    st.one_of(st.binary(max_size=64), st.just(b"\x11" * 4096)),
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(pairs, st.booleans())
def test_leaf_roundtrip_property(mapping, aligned):
    leaf = LeafNode(1)
    for i, (k, v) in enumerate(sorted(mapping.items())):
        value = PageFrame(v) if len(v) == 4096 else v
        leaf.apply(Insert(k, value, msn=i + 1), 1024)
    ser = serialize_node(leaf, aligned=aligned, lifting=True)
    back = decode_node(ser.data, aligned=aligned)
    got = {
        k: (bytes(v.data) if isinstance(v, PageFrame) else v)
        for bs in back.basements
        for k, v in bs.items()
    }
    assert got == mapping
