"""Tests for ``repro.check.durflow``: the static durability-ordering
analyzer and its runtime order-graph backstop.

Same two families as the other whole-program analyses:

* a fixture tree under ``tests/fixtures/durflow/tree`` proves every
  rule family *can* fire (a rule whose failing fixture passes checks
  nothing), and that waivers suppress exactly what they claim;
* self-tests prove the real ``src/repro`` tree is clean, so any new
  finding is a regression introduced by the change under review.

Plus the static/dynamic agreement suite:

* the order recorder is a **pure observer** — attaching it changes
  neither the device image (sha256) nor the simulated clock;
* every (effect, barrier) ordering observed by a fixed-seed torture
  sweep is covered by the static order graph, and ``harness torture
  --verify-order-graph`` enforces exactly that (stderr + exit code
  only; the stdout JSON stays byte-identical).
"""

import json
import os

import pytest

from repro.check import arch, conc, costflow, durflow, lint
from repro.check.order import OrderLog, OrderRecorder, layout_spans
from repro.crashmc.explore import _Stack
from repro.crashmc.workload import WORKLOADS
from repro.harness.mt import device_sha256

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
DUR_TREE = os.path.join(FIXTURES, "durflow", "tree")

_CACHE = {}


def _fixture_report():
    if "fixture" not in _CACHE:
        _CACHE["fixture"] = durflow.analyze(root=DUR_TREE, package="durpkg")
    return _CACHE["fixture"]


def _real_report():
    if "real" not in _CACHE:
        _CACHE["real"] = durflow.analyze()
    return _CACHE["real"]


def _by_rule(report):
    grouped = {}
    for violation in report.violations:
        grouped.setdefault(violation.rule, []).append(violation)
    return grouped


def _anchors(violations):
    return sorted((os.path.basename(v.path), v.line) for v in violations)


# ======================================================================
# Fixture tree: every rule family fires, and only where it should
# ======================================================================
class TestDurflowFixtures:
    def test_every_rule_family_fires(self):
        grouped = _by_rule(_fixture_report())
        assert set(grouped) == {
            "write-ahead",
            "barrier-order",
            "intent-protocol",
            "recovery-reads-durable",
            "unused-waiver",
        }, [v.render() for v in _fixture_report().violations]

    def test_write_ahead_anchors(self):
        """Both unlogged-mutation shapes: a bare ``tree.put`` with no
        dominating WAL append, and an env insert with a constant
        ``log=False`` at the call site."""
        found = _by_rule(_fixture_report())["write-ahead"]
        assert _anchors(found) == [
            ("bad_unlogged_mutation.py", 60),
            ("bad_unlogged_mutation.py", 64),
        ], [v.render() for v in found]

    def test_barrier_order_anchors(self):
        """The torn checkpoint (superblock written while nodes are
        dirty) and the unsynced acknowledgement (a ``sync`` entry whose
        exits are never barriered)."""
        found = _by_rule(_fixture_report())["barrier-order"]
        assert _anchors(found) == [
            ("bad_torn_checkpoint.py", 45),
            ("bad_torn_checkpoint.py", 53),
        ], [v.render() for v in found]

    def test_intent_protocol_anchors(self):
        """Three coordinator mistakes: applying to a shard before the
        intent is durable, fanning out over an unsorted shard iterator,
        and returning before phase 2 completes."""
        found = _by_rule(_fixture_report())["intent-protocol"]
        assert _anchors(found) == [
            ("bad_intent_order.py", 63),
            ("bad_intent_order.py", 64),
            ("bad_intent_order.py", 67),
        ], [v.render() for v in found]

    def test_recovery_reads_durable_anchor(self):
        [v] = _by_rule(_fixture_report())["recovery-reads-durable"]
        assert v.path.endswith("bad_recovery_peek.py") and v.line == 22
        # Evidence: the recovery call chain plus the volatile accessor.
        assert "unflushed" in v.message and "resolve_intents" in v.message

    def test_recovery_paths_exempt_from_write_ahead(self):
        """Log replay legitimately re-applies mutations without a new
        WAL append: the ``tree.put`` inside the recovery fixture must
        NOT double as a write-ahead finding."""
        for v in _by_rule(_fixture_report()).get("write-ahead", []):
            assert not v.path.endswith("bad_recovery_peek.py"), v.render()

    def test_clean_fixture_stays_clean(self):
        """good.py exercises every *correct* idiom (gated WAL append,
        node-flush-then-superblock checkpoint, sorted two-phase fanout)
        and must produce nothing."""
        for violation in _fixture_report().violations:
            assert not violation.path.endswith("good.py"), violation.render()

    def test_waiver_suppresses_exactly_one_finding(self):
        report = _fixture_report()
        for violation in report.violations:
            assert not violation.path.endswith("waived.py"), violation.render()
        used = [w for w in report.waivers if "waived.py:10" in w]
        assert len(used) == 1, report.waivers
        assert "scratch tree" in used[0]

    def test_unused_waivers_flagged(self):
        unused = _by_rule(_fixture_report())["unused-waiver"]
        assert _anchors(unused) == [("unused.py", 5), ("unused.py", 9)]
        by_line = {v.line: v.message for v in unused}
        assert "suppresses nothing" in by_line[5]
        assert "empty justification" in by_line[9]

    def test_fixture_order_graph_shape(self):
        graph = _fixture_report().order_graph
        assert "wal-write" in graph.effects
        assert "log-sync" in graph.barriers
        assert graph.covers("wal-write", "log-sync")
        assert graph.covers("wal-write")  # device-level flush matches
        assert not graph.covers("nonsense-kind")


# ======================================================================
# Real tree: clean, and its graph covers the runtime alphabet
# ======================================================================
class TestRealTree:
    def test_real_tree_is_clean(self):
        report = _real_report()
        assert report.ok, [v.render() for v in report.violations]

    def test_real_tree_coverage(self):
        """The analyzer actually saw the tree: hundreds of functions,
        the WAL/tree/superblock effect sites, the sync/checkpoint
        entries, the cross-shard coordinator, the recovery slice."""
        report = _real_report()
        assert report.functions > 500
        assert report.effect_sites >= 20
        assert report.barrier_sites >= 10
        assert report.entries_checked >= 10
        assert report.coordinators >= 1
        assert report.recovery_reachable >= 50

    def test_real_graph_covers_every_runtime_kind(self):
        """Every effect kind the runtime recorder can emit must have a
        static edge, or --verify-order-graph could never pass."""
        graph = _real_report().order_graph
        for kind in ("wal-write", "node-write", "sb-write", "trim", "dev-write"):
            assert graph.covers(kind), kind

    def test_real_graph_core_edges(self):
        """The load-bearing orderings of the design: log before
        log-sync, nodes before tree-sync, superblock last."""
        pairs = {(e.src, e.dst) for e in _real_report().order_graph.edges}
        assert ("wal-write", "log-sync") in pairs
        assert ("node-write", "tree-sync") in pairs
        assert ("sb-write", "sb-sync") in pairs

    def test_lint_composes_durflow(self, capsys):
        """Satellite: ``repro.check lint`` runs all five passes and
        reports the per-pass summary — rc and format are pinned."""
        assert lint.main([]) == 0
        out = capsys.readouterr().out
        assert (
            "repro.check lint: clean (lint=0 arch=0 costflow=0 conc=0 durflow=0)"
            in out
        )

    def test_lint_json_reports_passes(self, capsys):
        assert lint.main(["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passes"] == {
            "lint": 0, "arch": 0, "costflow": 0, "conc": 0, "durflow": 0,
        }
        assert payload["durflow"]["order_edges"] > 10


# ======================================================================
# Runtime backstop: pure observer, statically covered
# ======================================================================
class TestOrderRecorder:
    def _drive(self, attach):
        stack = _Stack()
        log = None
        if attach:
            log = OrderLog()
            log.attach(stack.device, stack.layouts)
        for op in WORKLOADS["tokubench"](3):
            stack.apply(op)
        return stack, log

    def test_recorder_is_a_pure_observer(self):
        """Bit-identity: the same seeded workload produces the same
        device image and the same simulated clock with the recorder
        attached or absent."""
        bare, _ = self._drive(attach=False)
        observed, log = self._drive(attach=True)
        assert device_sha256(bare.device) == device_sha256(observed.device)
        assert bare.clock.now == observed.clock.now
        assert bare.clock.io_wait == observed.clock.io_wait
        assert log.pairs, "a durable workload must observe orderings"

    def test_observed_pairs_covered_statically(self):
        _, log = self._drive(attach=True)
        graph = _real_report().order_graph
        for effect, barrier in log.observed():
            assert barrier == "flush"
            assert graph.covers(effect, barrier), (effect, barrier)

    def test_offset_classification(self):
        stack = _Stack()
        spans = layout_spans(stack.layouts)
        pairs = set()
        rec = OrderRecorder(spans, pairs)
        layout = stack.layout
        rec.on_write(layout.base, 4096)
        rec.on_write(layout.log_base, 4096)
        rec.on_write(layout.meta_base, 4096)
        rec.on_write(layout.data_base, 4096)
        rec.on_discard(layout.data_base, 4096)
        assert rec._pending == {"sb-write", "wal-write", "node-write", "trim"}
        rec.on_flush()
        assert rec._pending == set()
        assert pairs == {
            ("sb-write", "flush"),
            ("wal-write", "flush"),
            ("node-write", "flush"),
            ("trim", "flush"),
        }
        # Offsets outside every volume span are generic device writes.
        rec.on_write(10**15, 512)
        assert rec._pending == {"dev-write"}

    def test_torture_verify_order_graph(self, capsys):
        """Acceptance criterion: a fixed-seed torture sweep with
        ``--verify-order-graph`` passes, speaks on stderr only, and
        leaves the stdout JSON byte-identical to an unflagged run."""
        from repro.harness.__main__ import main as harness_main

        rc = harness_main(
            ["torture", "--seed", "5", "--budget", "8", "--verify-order-graph"]
        )
        flagged = capsys.readouterr()
        assert rc == 0
        assert "torture: order graph verified" in flagged.err
        assert "all covered statically" in flagged.err

        rc = harness_main(["torture", "--seed", "5", "--budget", "8"])
        plain = capsys.readouterr()
        assert rc == 0
        assert plain.out == flagged.out


# ======================================================================
# CLI: durflow subcommand, graph artifacts, baseline diffing
# ======================================================================
class TestDurflowCLI:
    def test_clean_run_exit_zero(self, capsys):
        assert durflow.main([]) == 0
        out = capsys.readouterr().out
        assert "repro.check durflow: clean" in out
        assert "durable-effect site(s)" in out

    def test_json_format_round_trips(self, capsys):
        assert durflow.main(["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert payload["new_violations"] == 0
        assert payload["order_graph"]["edges"]
        assert payload["functions"] > 500

    def test_graph_out_writes_json_and_dot(self, tmp_path, capsys):
        prefix = str(tmp_path / "order-graph")
        assert durflow.main(["--graph-out", prefix]) == 0
        data = json.loads((tmp_path / "order-graph.json").read_text())
        assert "wal-write" in data["effects"]
        assert "log-sync" in data["barriers"]
        dot = (tmp_path / "order-graph.dot").read_text()
        assert dot.startswith("digraph") and "wal-write" in dot

    def test_empty_baseline_passes_clean_tree(self, capsys):
        baseline = os.path.join(os.path.dirname(__file__), os.pardir,
                                "durflow-baseline.json")
        assert durflow.main(["--baseline", baseline]) == 0

    def test_bad_baseline_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        assert durflow.main(["--baseline", str(bad)]) == 2

    def test_baseline_suffix_matching(self, tmp_path):
        report = _fixture_report()
        [peek] = [
            v for v in report.violations if v.rule == "recovery-reads-durable"
        ]
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({
            "findings": [
                {"rule": "recovery-reads-durable",
                 "path": "fixtures/durflow/tree/bad_recovery_peek.py"},
            ],
        }))
        known = durflow.load_baseline(str(baseline))
        assert durflow._is_baselined(peek, known)
        others = [v for v in report.violations if v is not peek]
        assert not any(durflow._is_baselined(v, known) for v in others)

    def test_committed_baseline_is_empty(self):
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "durflow-baseline.json")
        data = json.loads(open(path, encoding="utf-8").read())
        assert data["findings"] == []


# ======================================================================
# Satellite: one waiver-hygiene contract across all four analyses
# ======================================================================
#: tool name -> analyze() over a tmp tree holding only waiver comments.
_HYGIENE_ANALYZES = {
    "arch": lambda root: arch.analyze(
        root=root, manifest=(("only", ("tpkg.mod",)),), package="tpkg"
    ),
    "costflow": lambda root: costflow.analyze(
        root=root, package="tpkg", exempt=()
    ),
    "conc": lambda root: conc.analyze(
        root=root, package="tpkg", manifest=(("only", ("tpkg.mod",)),)
    ),
    "durflow": lambda root: durflow.analyze(root=root, package="tpkg"),
}

#: tool name -> cached report over the tool's own fixture tree (which
#: holds a *used* waiver), for the used-is-printed half of the contract.
_FIXTURE_REPORTS = {
    "arch": lambda: arch.analyze(
        root=os.path.join(FIXTURES, "arch", "tree"),
        manifest=(
            ("high", ("fixpkg.high",)),
            ("mid", ("fixpkg.cyc_a", "fixpkg.cyc_b", "fixpkg.unused")),
            ("low", ("fixpkg.low",)),
        ),
        package="fixpkg",
    ),
    "costflow": lambda: costflow.analyze(
        root=os.path.join(FIXTURES, "costflow", "tree"),
        package="flowpkg",
        exempt=(),
    ),
    "conc": lambda: conc.analyze(
        root=os.path.join(FIXTURES, "conc", "tree"),
        package="concpkg",
        manifest=(
            ("scripts", ("concpkg.scripts",)),
            ("engine", ("concpkg.engine",)),
        ),
        signal_layers={"tree_io": "engine", "fsync": "scripts"},
    ),
    "durflow": _fixture_report,
}


class TestWaiverHygieneAcrossPasses:
    """Satellite: the four whole-program passes share one waiver
    contract — empty reason is an error, dead waiver is an error, used
    waivers are always printed, and waivers survive the JSON round
    trip.  Parametrized so a fifth pass must join or visibly opt out."""

    @pytest.mark.parametrize("tool", sorted(_HYGIENE_ANALYZES))
    def test_empty_and_dead_waivers_are_errors(self, tool, tmp_path):
        (tmp_path / "mod.py").write_text(
            f"X = 1  # {tool}: allow[]\n"
            f"Y = 2  # {tool}: allow[dead reason nothing consumes]\n"
        )
        report = _HYGIENE_ANALYZES[tool](str(tmp_path))
        hygiene = [v for v in report.violations if v.rule == "unused-waiver"]
        assert sorted(v.line for v in hygiene) == [1, 2], [
            v.render() for v in report.violations
        ]
        by_line = {v.line: v.message for v in hygiene}
        assert "empty justification" in by_line[1]
        assert "suppresses nothing" in by_line[2]

    @pytest.mark.parametrize("tool", sorted(_FIXTURE_REPORTS))
    def test_used_waivers_are_printed_and_round_trip(self, tool):
        key = f"hygiene:{tool}"
        if key not in _CACHE:
            _CACHE[key] = _FIXTURE_REPORTS[tool]()
        report = _CACHE[key]
        assert report.waivers, tool
        assert all("allow[" in w for w in report.waivers)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["waivers"] == list(report.waivers)
