"""Tests for ``repro.workloads.webserver_mt``.

Pins the PR's satellite guarantees: per-session RNG streams are
independent (salted + strided off the root seed, never shared), and a
same-seed run is byte-identical — summary JSON, device image sha256,
and simulated clock all reproduce.
"""

import json

from repro.harness.mt import device_sha256, run_mt, to_json
from repro.obs import Observability, session
from repro.sched import Scheduler
from repro.workloads.scale import SMOKE_SCALE
from repro.workloads.webserver_mt import (
    _SESSION_STRIDE,
    _WEB_STREAM,
    session_rng,
    setup_webserver,
    webserver_mt,
)


class TestSessionStreams:
    def test_streams_are_distinct_per_session(self):
        draws = [
            tuple(session_rng(7, sid).random() for _ in range(8))
            for sid in range(16)
        ]
        assert len(set(draws)) == 16

    def test_stream_is_pure_function_of_seed_and_sid(self):
        assert session_rng(7, 3).random() == session_rng(7, 3).random()
        assert session_rng(7, 3).random() != session_rng(8, 3).random()

    def test_salt_keeps_webserver_off_the_mailserver_streams(self):
        """Session 0's web stream must not be the mailserver's (the raw
        root seed) — that is exactly what the ``_WEB_STREAM`` salt is
        for."""
        import random

        assert _WEB_STREAM != 0
        assert session_rng(11, 0).random() != random.Random(11).random()
        # And the stride matches the repo-wide splitmix64 gamma idiom.
        assert _SESSION_STRIDE == 0x9E3779B97F4A7C15


class TestWebserverMT:
    def _run(self, **kw):
        with session(Observability()):
            return run_mt(
                SMOKE_SCALE, workload="webserver_mt", sessions=4, seed=7, **kw
            )

    def test_same_seed_runs_are_byte_identical(self):
        a, b = self._run(), self._run()
        assert to_json(a) == to_json(b)
        assert a["device_sha256"] == b["device_sha256"]

    def test_different_seed_differs(self):
        with session(Observability()):
            other = run_mt(
                SMOKE_SCALE, workload="webserver_mt", sessions=4, seed=8
            )
        assert self._run()["device_sha256"] != other["device_sha256"]

    def test_mix_reads_and_logs_under_locks(self):
        summary = self._run()
        assert summary["ops"] == 4 * summary["ops_per_session"]
        # 90/10 mix: reads dominate, but log appends did happen (the
        # lock table saw acquisitions on the weblog keys).
        assert summary["locks"]["acquisitions"] > 0
        keys = {
            key for pair in summary["lock_order"] for key in pair
        }
        assert all(key.startswith("weblog:") for key in keys)

    def test_scheduler_returned_with_sessions(self):
        from repro.betrfs.filesystem import make_betrfs

        with session(Observability()):
            fs = make_betrfs("BetrFS v0.6")
            sched = webserver_mt(
                fs, SMOKE_SCALE, sessions=3, seed=5, ops_per_session=10
            )
        assert isinstance(sched, Scheduler)
        assert [s.ops for s in sched.sessions] == [10, 10, 10]
        assert all(s.affinity is None for s in sched.sessions)

    def test_setup_creates_vhost_tree(self):
        from repro.betrfs.filesystem import make_betrfs

        with session(Observability()):
            fs = make_betrfs("BetrFS v0.6")
            vhosts = setup_webserver(fs, SMOKE_SCALE)
            names = fs.vfs.readdir("/www")
        assert vhosts == SMOKE_SCALE.mail_folders
        assert len(names) == vhosts
        assert fs.vfs.exists("/www/vhost00/access.log")
