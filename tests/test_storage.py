"""Tests for the southbound substrates (SFL and stacked ext4)."""

import pytest

from repro.device.block import BlockDevice
from repro.device.clock import SimClock
from repro.model.costs import CostModel
from repro.model.profiles import COMMODITY_SSD
from repro.storage.ext4sim import Ext4Southbound
from repro.storage.sfl import SimpleFileLayer

MIB = 1 << 20


def make(kind):
    clock = SimClock()
    device = BlockDevice(clock, COMMODITY_SSD)
    costs = CostModel()
    if kind == "sfl":
        storage = SimpleFileLayer(device, costs, log_size=8 * MIB, meta_size=32 * MIB)
    else:
        storage = Ext4Southbound(device, costs)
        storage.create("superblock", 8 * MIB)
        storage.create("log", 8 * MIB)
        storage.create("meta.db", 32 * MIB)
        storage.create("data.db", 64 * MIB)
    return storage, device, clock


@pytest.mark.parametrize("kind", ["sfl", "ext4"])
class TestCommonContract:
    def test_write_read_roundtrip(self, kind):
        storage, _, _ = make(kind)
        storage.write("meta.db", 4096, b"node-bytes" * 100)
        assert storage.read("meta.db", 4096, 1000) == (b"node-bytes" * 100)[:1000]

    def test_files_are_isolated(self, kind):
        storage, _, _ = make(kind)
        storage.write("meta.db", 0, b"M" * 4096)
        storage.write("data.db", 0, b"D" * 4096)
        assert storage.read("meta.db", 0, 4096) == b"M" * 4096
        assert storage.read("data.db", 0, 4096) == b"D" * 4096

    def test_out_of_bounds_rejected(self, kind):
        storage, _, _ = make(kind)
        with pytest.raises(ValueError):
            storage.read("log", storage.file_size("log"), 4096)

    def test_prefetch_matches_sync_read(self, kind):
        storage, _, _ = make(kind)
        payload = bytes(range(256)) * 64
        storage.write("data.db", 8192, payload)
        storage.sync("data.db")
        completion = storage.prefetch("data.db", 8192, len(payload))
        assert storage.finish_read(completion) == payload

    def test_sync_is_a_barrier(self, kind):
        storage, device, clock = make(kind)
        storage.write("log", 0, b"entry" * 1000)
        t0 = clock.now
        storage.sync("log")
        assert clock.now > t0
        assert device.stats.flushes >= 1


class TestSFLSpecifics:
    def test_fixed_file_set(self):
        storage, _, _ = make("sfl")
        with pytest.raises(ValueError):
            storage.create("random-new-file", 4096)

    def test_create_validates_size(self):
        storage, _, _ = make("sfl")
        with pytest.raises(ValueError):
            storage.create("log", 1 << 40)

    def test_byref_write_skips_copy_charge(self):
        storage, _, clock = make("sfl")
        data = b"z" * MIB
        storage.write("data.db", 0, data, byref=False)
        with_copy = clock.cpu_time
        storage.write("data.db", 2 * MIB, data, byref=True)
        without_copy = clock.cpu_time - with_copy
        assert without_copy < with_copy

    def test_no_journal(self):
        storage, device, _ = make("sfl")
        storage.write("meta.db", 0, b"n" * 4096)
        storage.sync("meta.db")
        # Exactly the data write: no journal blocks on the device.
        assert device.stats.writes == 1


class TestExt4Specifics:
    def test_double_journaling_on_sync(self):
        storage, device, _ = make("ext4")
        storage.write("log", 0, b"wal-entry" * 100)
        writes_before = storage.journal.commits
        storage.sync("log")
        assert storage.journal.commits > writes_before
        assert device.stats.flushes >= 2  # ordered data + commit barriers

    def test_stacked_writes_cost_more_cpu_than_sfl(self):
        ext4, _, ext4_clock = make("ext4")
        sfl, _, sfl_clock = make("sfl")
        data = b"b" * MIB
        ext4.write("data.db", 0, data)
        sfl.write("data.db", 0, data, byref=True)
        assert ext4_clock.cpu_time > sfl_clock.cpu_time

    def test_chunked_reads(self):
        storage, device, _ = make("ext4")
        storage.write("data.db", 0, b"r" * (1 * MIB))
        storage.sync("data.db")
        reads_before = device.stats.reads
        storage.read("data.db", 0, 1 * MIB)
        # 1 MiB read through 128 KiB read-ahead windows: 8 device reads.
        assert device.stats.reads - reads_before == 8

    def test_dirty_limit_stutters(self):
        storage, _, clock = make("ext4")
        # Push well past the dirty limit and ensure the writer blocked
        # (io_wait accumulated) rather than sailing through.
        for i in range(12):
            storage.write("data.db", i * MIB, b"w" * MIB)
        assert clock.io_wait > 0
