"""Sanity tests for workload drivers (run at tiny scale)."""

import dataclasses

import pytest

from repro.harness.runner import make_mount
from repro.workloads import (
    SMOKE_SCALE,
    find_tree,
    git_clone,
    git_diff,
    grep_tree,
    linux_like_tree,
    mailserver,
    random_write_4b,
    random_write_4k,
    rm_rf,
    rsync_copy,
    seq_read,
    seq_write,
    tar_tree,
    tokubench,
    untar_tree,
)
from repro.workloads.filebench import (
    filebench_fileserver,
    filebench_oltp,
    filebench_webproxy,
    filebench_webserver,
)
from repro.workloads.gitops import setup_git_repo
from repro.workloads.trees import build_tree, file_content, GREP_NEEDLE

TINY = dataclasses.replace(
    SMOKE_SCALE,
    seq_bytes=2 << 20,
    rand_file_bytes=2 << 20,
    rand_ops=64,
    toku_files=300,
    tree_files=60,
    tree_bytes=1 << 20,
    mail_folders=2,
    mail_msgs_per_folder=8,
    mail_ops=60,
    filebench_ops=80,
)


class TestTreeSpec:
    def test_plan_counts(self):
        spec = linux_like_tree("/linux", 200, 4 << 20)
        assert len(spec.files) == 200
        # The 256-byte floor per file can push a hair past the budget.
        assert spec.total_bytes <= (4 << 20) * 1.05
        assert all(p.startswith("/linux/") for p, _ in spec.files)
        assert spec.dirs[0] == "/linux"

    def test_deterministic(self):
        a = linux_like_tree("/x", 100, 1 << 20)
        b = linux_like_tree("/x", 100, 1 << 20)
        assert a.files == b.files and a.dirs == b.dirs

    def test_scaled_copy(self):
        a = linux_like_tree("/one", 50, 1 << 20)
        b = a.scaled_copy("/two")
        assert len(b.files) == 50
        assert b.files[0][0].startswith("/two/")
        assert b.files[0][1] == a.files[0][1]

    def test_file_content_needle(self):
        body = file_content(4096, with_needle=True)
        assert GREP_NEEDLE in body
        assert len(body) == 4096
        assert GREP_NEEDLE not in file_content(4096, with_needle=False)


@pytest.mark.parametrize("system", ["ext4", "BetrFS v0.6"])
class TestMicroWorkloads:
    def test_sequential(self, system):
        mount = make_mount(system, TINY)
        w = seq_write(mount, TINY)
        r = seq_read(mount, TINY)
        assert w > 0 and r > 0

    def test_random_writes(self, system):
        mount = make_mount(system, TINY)
        assert random_write_4k(mount, TINY) > 0
        mount = make_mount(system, TINY)
        assert random_write_4b(mount, TINY) > 0

    def test_tokubench(self, system):
        mount = make_mount(system, TINY)
        kops = tokubench(mount, TINY)
        assert kops > 0
        # All files exist.
        assert mount.vfs.exists("/toku")

    def test_dirops(self, system):
        mount = make_mount(system, TINY)
        spec = linux_like_tree("/linux", TINY.tree_files, TINY.tree_bytes)
        build_tree(mount, spec)
        assert grep_tree(mount, "/linux") > 0
        assert find_tree(mount, "/linux") > 0
        assert rm_rf(mount, "/linux") > 0
        assert not mount.vfs.exists("/linux")


@pytest.mark.parametrize("system", ["zfs", "BetrFS v0.6"])
class TestApplicationWorkloads:
    def test_tar_untar(self, system):
        mount = make_mount(system, TINY)
        spec = linux_like_tree("/src", TINY.tree_files, TINY.tree_bytes)
        assert untar_tree(mount, spec) > 0
        assert tar_tree(mount, spec) > 0
        assert mount.vfs.stat("/archive.tar").size > 0

    def test_git(self, system):
        mount = make_mount(system, TINY)
        spec = linux_like_tree("/repo", TINY.tree_files, TINY.tree_bytes)
        setup_git_repo(mount, spec, 256 << 10)
        assert git_clone(mount, spec, 256 << 10, "/clone") > 0
        assert git_diff(mount, spec, 256 << 10) > 0
        assert mount.vfs.exists("/clone/.git-pack")

    def test_rsync_both_modes(self, system):
        mount = make_mount(system, TINY)
        spec = linux_like_tree("/src", TINY.tree_files, TINY.tree_bytes)
        build_tree(mount, spec)
        assert rsync_copy(mount, spec, "/dst1", in_place=False) > 0
        assert rsync_copy(mount, spec, "/dst2", in_place=True) > 0
        # Both copies hold the data.
        path, size = spec.files[0]
        rel = path[len(spec.root):]
        a = mount.vfs.read("/dst1" + rel, 0, size)
        b = mount.vfs.read("/dst2" + rel, 0, size)
        assert a == b and len(a) == size

    def test_mailserver(self, system):
        mount = make_mount(system, TINY)
        assert mailserver(mount, TINY) > 0

    def test_filebench_personalities(self, system):
        for fn in (
            filebench_oltp,
            filebench_fileserver,
            filebench_webserver,
            filebench_webproxy,
        ):
            mount = make_mount(system, TINY)
            assert fn(mount, TINY) > 0
