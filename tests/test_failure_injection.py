"""Failure-injection tests: torn writes, corrupted media, crash storms.

These exercise the recovery paths the paper relies on: CRC-checked log
entries, CRC-checked nodes, ping-pong superblocks, and the
prefix-of-the-log crash contract.
"""

import random

import pytest

from repro.core.env import DATA, META
from repro.core.messages import PageFrame, value_bytes
from tests.test_env import LAYOUT, make_env, reopen

MIB = 1 << 20


class TestTornLog:
    def test_torn_tail_entry_is_discarded_cleanly(self):
        env, device = make_env()
        for i in range(50):
            env.insert(META, b"k%02d" % i, b"v")
        env.sync()
        for i in range(50, 60):
            env.insert(META, b"k%02d" % i, b"late")
        env.wal.flush(durable=False)
        # Tear the last flushed bytes (simulate a partial sector write).
        head = env.wal.head
        device.store.write(LAYOUT.log_base + head - 7, b"\x00" * 7)
        env2 = reopen(device)
        # The synced prefix survives; the torn suffix is dropped
        # without corrupting anything.
        for i in range(50):
            assert env2.get(META, b"k%02d" % i) == b"v"
        for i in range(50, 60):
            assert env2.get(META, b"k%02d" % i) in (None, b"late")

    def test_garbage_in_log_region_is_ignored(self):
        env, device = make_env()
        env.insert(META, b"k", b"v")
        env.sync()
        device.store.write(LAYOUT.log_base + env.wal.head + 4096, b"\xa5" * 512)
        env2 = reopen(device)
        assert env2.get(META, b"k") == b"v"


class TestCorruptNodes:
    def test_checkpointed_node_corruption_is_detected(self):
        from repro.check.fsck import fsck_device
        from repro.core.serialize import ChecksumError

        env, device = make_env()
        for i in range(300):
            env.insert(META, b"key%04d" % i, b"value" * 5)
        env.close()
        # Corrupt a byte inside the meta tree region.
        root_off, root_len = env.meta.blockman.lookup(env.meta.root_id)
        device.store.write(
            LAYOUT.meta_base + root_off + root_len // 2, b"\xff"
        )
        # The offline checker flags the damage up front ...
        report = fsck_device(
            device.crash_image(), log_size=8 * MIB, meta_size=64 * MIB
        )
        assert not report.ok
        assert any("unreadable" in e for e in report.errors)
        # ... and the runtime CRC check catches it on first touch.
        env2 = reopen(device, fsck=False)
        with pytest.raises(ChecksumError):
            env2.get(META, b"key0000")


class TestCrashStorm:
    def test_crash_storm_full_stack(self):
        env, device = make_env()
        expected = {}
        rng = random.Random(9)
        for generation in range(5):
            for _ in range(30):
                k = b"g%02d-%02d" % (generation, rng.randrange(30))
                v = b"gen%d" % generation
                env.insert(META, k, v)
                expected[k] = v
            if generation % 2:
                env.checkpoint()
            else:
                env.sync()
            image = device.crash_image()
            from repro.check.fsck import fsck_device
            from repro.core.env import KVEnv
            from repro.kmem.allocator import KernelAllocator
            from repro.model.costs import CostModel
            from repro.storage.sfl import SimpleFileLayer
            from tests.test_env import small_cfg

            fsck_device(
                image, log_size=8 * MIB, meta_size=64 * MIB
            ).raise_if_errors()
            costs = CostModel()
            env = KVEnv.open(
                SimpleFileLayer(image, costs, log_size=8 * MIB, meta_size=64 * MIB),
                image.clock,
                costs,
                KernelAllocator(image.clock, costs),
                small_cfg(),
                log_size=8 * MIB,
                meta_size=64 * MIB,
                data_size=256 * MIB,
            )
            device = image
            for k, v in expected.items():
                assert env.get(META, k) == v, (generation, k)

    def test_data_pages_across_crash_storm(self):
        env, device = make_env(log_page_values=False)
        pages = {}
        for round_no in range(3):
            for i in range(30):
                key = b"blk\x00" + bytes([round_no, i])
                body = bytes([round_no * 16 + i % 16]) * 4096
                env.insert(DATA, key, PageFrame(body))
                pages[key] = body
            env.sync()
            env = reopen(device)  # crash + reboot from the device image
            device = env.storage.device  # continue on the rebooted disk
            for key, body in pages.items():
                assert value_bytes(env.get(DATA, key)) == body


class TestPlanDrivenCrashes:
    """The same failure shapes the ad-hoc tests above poke by hand,
    expressed as repro.crashmc crash plans: the volatile write cache
    produces the torn/lost states by construction instead of byte
    surgery at magic offsets."""

    def _stack(self):
        from repro.crashmc.explore import _Stack

        return _Stack()

    def _ops(self, *ops):
        from repro.crashmc import Oracle

        stack = self._stack()
        oracle = Oracle()
        for op in ops:
            oracle.begin(op)
            stack.apply(op)
            oracle.commit(op)
        return stack, oracle

    def test_torn_log_tail_via_plan(self):
        """Engine-driven version of test_torn_tail_entry_is_discarded:
        tear the unflushed WAL write at every sector cut instead of
        zeroing bytes at a hand-computed offset."""
        from repro.crashmc import Op, run_case
        from repro.crashmc.plan import CrashPlan
        from repro.crashmc.explore import VIOLATION
        from repro.device.block import CacheRecord

        ops = [Op("insert", META, b"k%02d" % i, b"v") for i in range(50)]
        ops.append(Op("sync"))
        ops += [Op("insert", META, b"k%02d" % i, b"late") for i in range(50, 60)]
        ops.append(Op("wflush"))
        stack, oracle = self._ops(*ops)
        writes = [
            r for r in stack.device.unflushed() if r.kind == CacheRecord.WRITE
        ]
        assert writes, "wflush produced no at-risk log write"
        sector = stack.device.profile.sector
        last = writes[-1]
        sectors = (last.length + sector - 1) // sector
        seqs = tuple(r.seq for r in stack.device.unflushed())
        for cut in range(1, max(sectors, 2)):
            plan = CrashPlan(selected=seqs, torn_tail_sectors=cut)
            result = run_case(stack, oracle, plan)
            assert result.status != VIOLATION, (cut, result.detail)

    def test_crash_storm_via_plans(self):
        """Engine-driven version of test_crash_storm_full_stack: after
        each generation, every prefix of the unflushed commands must
        recover oracle-consistent."""
        from repro.crashmc import Op, Oracle, run_case
        from repro.crashmc.plan import CrashPlan
        from repro.crashmc.explore import VIOLATION

        rng = random.Random(9)
        stack = self._stack()
        oracle = Oracle()
        cases = 0
        for generation in range(4):
            ops = [
                Op(
                    "insert", META,
                    b"g%02d-%02d" % (generation, rng.randrange(30)),
                    b"gen%d" % generation,
                )
                for _ in range(20)
            ]
            ops.append(Op("wflush"))
            ops.append(Op("checkpoint" if generation % 2 else "sync"))
            for op in ops:
                oracle.begin(op)
                stack.apply(op)
                oracle.commit(op)
            seqs = [r.seq for r in stack.device.unflushed()]
            for i in range(len(seqs) + 1):
                plan = CrashPlan(selected=tuple(seqs[:i]))
                result = run_case(stack, oracle, plan)
                assert result.status != VIOLATION, (
                    generation, plan.describe(), result.detail,
                )
                cases += 1
        assert cases >= 4  # at least the empty plan per generation

    def test_corrupt_node_via_media_plan(self):
        """Engine-driven version of the node-corruption test: a
        bit-flip media plan inside the checkpointed meta region must be
        *detected* (fsck or checksum), never silently absorbed."""
        from repro.crashmc import Op, run_case
        from repro.crashmc.plan import CrashPlan
        from repro.crashmc.explore import VIOLATION

        ops = [
            Op("insert", META, b"key%04d" % i, b"value" * 5) for i in range(300)
        ]
        ops.append(Op("checkpoint"))
        stack, oracle = self._ops(*ops)
        root_off, root_len = stack.env.meta.blockman.lookup(stack.env.meta.root_id)
        offset = stack.layout.meta_base + root_off + root_len // 2
        result = run_case(stack, oracle, CrashPlan(bitflips=((offset, 0x80),)))
        assert result.status != VIOLATION, result.detail
        assert result.status == "detected", result
        assert result.stage in ("fsck", "exception")


class TestLogWrapUnderLoad:
    def test_tiny_log_region_forces_checkpoints_but_stays_correct(self):
        env, device = make_env()
        env.wal.region_size = 64 * 1024
        for i in range(2000):
            env.insert(META, b"key%05d" % i, b"val" * 8)
        env.sync()
        assert env.checkpoints > 0
        env2 = reopen(device)
        for i in range(0, 2000, 97):
            assert env2.get(META, b"key%05d" % i) == b"val" * 8
