"""Tests for the node cache, page cache and dentry cache."""

from repro.core.cache import NodeCache
from repro.core.messages import PageFrame
from repro.core.node import InternalNode, LeafNode
from repro.device.clock import SimClock
from repro.model.costs import CostModel
from repro.vfs.dcache import DentryCache
from repro.vfs.inode import FileKind, Stat, VInode
from repro.vfs.pagecache import PAGE_SIZE, PageCache


def leaf_with(node_id, nbytes):
    from repro.core.messages import Insert

    leaf = LeafNode(node_id)
    leaf.apply(Insert(b"k%d" % node_id, b"x" * nbytes, msn=node_id), 1 << 20)
    return leaf


class TestNodeCache:
    def test_hit_miss_counters(self):
        cache = NodeCache(1 << 20)
        cache.put(leaf_with(1, 10), owner=None)
        assert cache.get(1) is not None
        assert cache.get(2) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_prefers_leaves(self):
        cache = NodeCache(600)
        owner = object()
        internal = InternalNode(1, height=1)
        internal.children = [2]
        cache.put(internal, owner)
        cache.put(leaf_with(2, 300), owner)
        cache.put(leaf_with(3, 300), owner)
        written = []
        cache.evict_to_fit(lambda o, n: written.append(n.node_id))
        # The internal node survives; a leaf went.
        assert cache.get(1) is not None

    def test_pinned_nodes_survive(self):
        cache = NodeCache(100)
        owner = object()
        cache.put(leaf_with(1, 400), owner)
        cache.pin(1)
        cache.evict_to_fit(lambda o, n: None)
        assert cache.get(1) is not None
        cache.unpin(1)
        cache.evict_to_fit(lambda o, n: None)
        assert cache.get(1) is None

    def test_dirty_victims_are_written(self):
        cache = NodeCache(100)
        owner = object()
        leaf = leaf_with(1, 400)
        leaf.dirty = True
        cache.put(leaf, owner)
        written = []
        cache.evict_to_fit(lambda o, n: written.append((o, n.node_id)))
        assert written == [(owner, 1)]

    def test_dirty_nodes_iteration(self):
        cache = NodeCache(1 << 20)
        a, b = leaf_with(1, 10), leaf_with(2, 10)
        b.dirty = False
        cache.put(a, "o1")
        cache.put(b, "o2")
        assert [(o, n.node_id) for o, n in cache.dirty_nodes()] == [("o1", 1)]


class TestPageCache:
    def make(self):
        return PageCache(SimClock(), CostModel(), 16 * PAGE_SIZE, 4 * PAGE_SIZE)

    def test_write_then_lookup(self):
        pc = self.make()
        pc.write("/f", 0, 0, b"hello")
        page = pc.lookup("/f", 0)
        assert page.dirty
        assert page.frame.data[:5] == b"hello"
        assert pc.dirty_bytes == PAGE_SIZE

    def test_mark_clean(self):
        pc = self.make()
        pc.write("/f", 0, 0, b"x")
        pc.mark_clean("/f", 0, shared=True)
        assert pc.dirty_bytes == 0
        assert pc.lookup("/f", 0).writeback_shared

    def test_cow_on_shared_frame(self):
        pc = self.make()
        pc.write("/f", 0, 0, b"v1")
        page = pc.lookup("/f", 0)
        page.frame.get()  # the "tree" takes a reference
        pc.mark_clean("/f", 0, shared=True)
        old = page.frame
        pc.write("/f", 0, 0, b"v2")
        assert pc.lookup("/f", 0).frame is not old
        assert pc.cow_copies == 1
        assert old.data[:2] == b"v1"  # history preserved for the tree

    def test_cow_elided_when_tree_released(self):
        pc = self.make()
        pc.write("/f", 0, 0, b"v1")
        pc.mark_clean("/f", 0, shared=True)  # shared but refs == 1
        old = pc.lookup("/f", 0).frame
        pc.write("/f", 0, 0, b"v2")
        assert pc.lookup("/f", 0).frame is old
        assert pc.cow_elided == 1

    def test_drop_file(self):
        pc = self.make()
        pc.write("/f", 0, 0, b"a")
        pc.write("/g", 0, 0, b"b")
        pc.drop_file("/f")
        assert pc.lookup("/f", 0) is None
        assert pc.lookup("/g", 0) is not None
        assert pc.dirty_bytes == PAGE_SIZE

    def test_eviction_returns_dirty_for_writeback(self):
        pc = self.make()
        for i in range(20):
            pc.write("/f", i, 0, b"d")
        need = pc.evict_to_fit()
        assert need  # dirty pages cannot be silently dropped
        for p, i, page in need:
            pc.mark_clean(p, i, shared=False)
        pc.evict_to_fit()
        assert pc.cached_bytes() <= pc.budget


class TestDentryCache:
    def test_positive_negative(self):
        dc = DentryCache()
        dc.insert(VInode("/a", Stat()))
        dc.insert_negative("/missing")
        assert dc.get("/a") is not None
        assert dc.contains("/missing") and dc.get("/missing") is None
        assert dc.negative_hits == 1

    def test_invalidate_tree(self):
        dc = DentryCache()
        for p in ("/d", "/d/x", "/d/x/y", "/dz"):
            dc.insert(VInode(p, Stat()))
        dc.invalidate_tree("/d")
        assert not dc.contains("/d")
        assert not dc.contains("/d/x/y")
        assert dc.contains("/dz")  # sibling with shared prefix survives

    def test_dirty_inodes_never_evicted(self):
        dc = DentryCache(capacity=4)
        dirty = VInode("/dirty", Stat(), dirty=True)
        dc.insert(dirty)
        for i in range(10):
            dc.insert(VInode(f"/clean{i}", Stat()))
        assert dc.contains("/dirty")

    def test_clear_clean_keeps_dirty(self):
        dc = DentryCache()
        dc.insert(VInode("/dirty", Stat(), dirty=True))
        dc.insert(VInode("/clean", Stat()))
        dc.clear_clean()
        assert dc.contains("/dirty")
        assert not dc.contains("/clean")
