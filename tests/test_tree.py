"""Functional and property tests for the B-epsilon-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.env import DATA, META
from repro.core.messages import PageFrame, value_bytes
from repro.core.node import InternalNode, LeafNode
from tests.conftest import build_env

from repro.core.config import BeTreeConfig
from repro.device.block import BlockDevice
from repro.device.clock import SimClock
from repro.model.profiles import NULL_DEVICE


def fresh_env(**cfg_overrides):
    cfg = BeTreeConfig()
    cfg.node_size = 8192
    cfg.basement_size = 2048
    cfg.buffer_size = 4096
    cfg.fanout = 4
    cfg.cache_bytes = 1 << 20
    for k, v in cfg_overrides.items():
        setattr(cfg, k, v)
    device = BlockDevice(SimClock(), NULL_DEVICE)
    return build_env(device, cfg)


class TestPointOperations:
    def test_insert_get(self):
        env = fresh_env()
        env.insert(META, b"k", b"v")
        assert env.get(META, b"k") == b"v"

    def test_overwrite(self):
        env = fresh_env()
        env.insert(META, b"k", b"v1")
        env.insert(META, b"k", b"v2")
        assert env.get(META, b"k") == b"v2"

    def test_delete(self):
        env = fresh_env()
        env.insert(META, b"k", b"v")
        env.delete(META, b"k")
        assert env.get(META, b"k") is None

    def test_delete_missing_is_noop(self):
        env = fresh_env()
        env.delete(META, b"ghost")
        assert env.get(META, b"ghost") is None

    def test_patch_blind_update(self):
        env = fresh_env()
        env.insert(META, b"k", b"abcdef")
        env.patch(META, b"k", 2, b"XY")
        assert env.get(META, b"k") == b"abXYef"

    def test_patch_on_missing_key_materializes(self):
        env = fresh_env()
        env.patch(META, b"k", 3, b"Z")
        assert env.get(META, b"k") == b"\x00\x00\x00Z"

    def test_many_inserts_split_the_tree(self):
        env = fresh_env()
        for i in range(3000):
            env.insert(META, b"key%05d" % i, b"value%05d" % i)
        tree = env.meta
        root = tree._load_node(tree.root_id)
        assert isinstance(root, InternalNode)
        assert tree.stats.leaf_splits > 0
        for i in range(0, 3000, 117):
            assert env.get(META, b"key%05d" % i) == b"value%05d" % i

    def test_interleaved_ops(self):
        env = fresh_env()
        for i in range(1000):
            env.insert(META, b"k%04d" % i, b"v%d" % i)
            if i % 3 == 0:
                env.delete(META, b"k%04d" % (i // 2))
        for i in range(1000):
            expected = None if (i % 3 == 0 or (i * 2 < 1000 and (i * 2) % 3 == 0)) else b"v%d" % i
            # Recompute expectation directly:
        model = {}
        env2 = fresh_env()
        for i in range(1000):
            model[b"k%04d" % i] = b"v%d" % i
            env2.insert(META, b"k%04d" % i, b"v%d" % i)
            if i % 3 == 0:
                model.pop(b"k%04d" % (i // 2), None)
                env2.delete(META, b"k%04d" % (i // 2))
        for k, v in model.items():
            assert env2.get(META, k) == v


class TestRangeOperations:
    def test_range_delete(self):
        env = fresh_env()
        for i in range(100):
            env.insert(META, b"k%03d" % i, b"v")
        env.range_delete(META, b"k010", b"k020")
        for i in range(100):
            got = env.get(META, b"k%03d" % i)
            if 10 <= i < 20:
                assert got is None
            else:
                assert got == b"v"

    def test_range_query_ordering_and_bounds(self):
        env = fresh_env()
        for i in range(0, 100, 2):
            env.insert(META, b"k%03d" % i, b"v%d" % i)
        rows = env.range_query(META, b"k010", b"k030")
        keys = [k for k, _ in rows]
        assert keys == [b"k%03d" % i for i in range(10, 30, 2)]
        assert keys == sorted(keys)

    def test_range_query_limit(self):
        env = fresh_env()
        for i in range(50):
            env.insert(META, b"k%02d" % i, b"v")
        rows = env.range_query(META, b"k00", b"k99", limit=7)
        assert len(rows) == 7
        assert rows[0][0] == b"k00"

    def test_range_query_sees_pending_messages(self):
        env = fresh_env()
        for i in range(30):
            env.insert(META, b"k%02d" % i, b"v")
        env.range_delete(META, b"k05", b"k10")
        env.insert(META, b"k07", b"resurrected")
        rows = dict(env.range_query(META, b"k00", b"k99"))
        assert b"k06" not in rows
        assert rows[b"k07"] == b"resurrected"

    def test_seek(self):
        env = fresh_env()
        env.insert(META, b"b", b"1")
        env.insert(META, b"d", b"2")
        assert env.meta.seek(b"a", b"z")[0] == b"b"
        assert env.meta.seek(b"c", b"z")[0] == b"d"
        assert env.meta.seek(b"e", b"z") is None

    def test_empty_range(self):
        env = fresh_env()
        env.insert(META, b"m", b"v")
        assert env.meta.empty_range(b"a", b"c")
        assert not env.meta.empty_range(b"a", b"z")


class TestPageValues:
    def test_page_roundtrip_by_value(self):
        env = fresh_env()
        page = PageFrame(b"\x42" * 4096)
        env.insert(DATA, b"f\x00\x00\x00\x00\x01", page)
        got = env.get(DATA, b"f\x00\x00\x00\x00\x01")
        assert value_bytes(got) == b"\x42" * 4096

    def test_page_roundtrip_by_ref(self):
        env = fresh_env(page_sharing=True)
        page = PageFrame(b"\x43" * 4096)
        env.insert(DATA, b"g\x00\x00\x00\x00\x01", page, by_ref=True)
        got = env.get(DATA, b"g\x00\x00\x00\x00\x01")
        assert value_bytes(got) == b"\x43" * 4096


class TestApplyOnQueryPolicies:
    @pytest.mark.parametrize("lazy", [False, True])
    def test_correctness_under_policy(self, lazy):
        env = fresh_env(lazy_apply_on_query=lazy)
        model = {}
        rng = random.Random(5)
        for step in range(2500):
            i = rng.randrange(400)
            k = b"k%03d" % i
            op = rng.random()
            if op < 0.55:
                v = b"v%d" % step
                env.insert(META, k, v)
                model[k] = v
            elif op < 0.7:
                env.delete(META, k)
                model.pop(k, None)
            elif op < 0.8:
                lo, hi = sorted((i, rng.randrange(400)))
                klo, khi = b"k%03d" % lo, b"k%03d" % hi
                if klo < khi:
                    env.range_delete(META, klo, khi)
                    for dead in [x for x in model if klo <= x < khi]:
                        del model[dead]
            else:
                assert env.get(META, k) == model.get(k)
        for k, v in model.items():
            assert env.get(META, k) == v
        rows = dict(env.range_query(META, b"k000", b"k999"))
        assert rows == model

    def test_eager_policy_does_more_aoq_work(self):
        eager = fresh_env(lazy_apply_on_query=False)
        lazy = fresh_env(lazy_apply_on_query=True)
        for env in (eager, lazy):
            for i in range(2000):
                env.insert(META, b"k%04d" % i, b"v")
            for i in range(0, 2000, 7):
                env.get(META, b"k%04d" % i)
        assert eager.meta.stats.aoq_examined > lazy.meta.stats.aoq_examined


class TestEvictionAndReload:
    def test_cold_reads_after_eviction(self):
        env = fresh_env(cache_bytes=16 * 1024)  # tiny cache
        for i in range(2000):
            env.insert(META, b"key%05d" % i, b"value%03d" % (i % 97))
        assert env.cache.evictions > 0
        for i in range(0, 2000, 59):
            assert env.get(META, b"key%05d" % i) == b"value%03d" % (i % 97)
        assert env.meta.stats.node_reads > 0


# ----------------------------------------------------------------------
# Property: the tree matches a dict model under random op sequences,
# across feature-flag combinations.
# ----------------------------------------------------------------------
op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "range_delete", "patch"]),
        st.integers(0, 60),
        st.integers(0, 60),
    ),
    max_size=80,
)


@settings(max_examples=25, deadline=None)
@given(op_strategy, st.booleans(), st.booleans())
def test_tree_matches_model(op_list, lazy, page_sharing):
    env = fresh_env(lazy_apply_on_query=lazy, page_sharing=page_sharing)
    model = {}
    for n, (op, x, y) in enumerate(op_list):
        k = b"key%02d" % x
        if op == "insert":
            v = b"val%02d-%d" % (y, n)
            env.insert(META, k, v)
            model[k] = v
        elif op == "delete":
            env.delete(META, k)
            model.pop(k, None)
        elif op == "range_delete":
            lo, hi = sorted((x, y))
            klo, khi = b"key%02d" % lo, b"key%02d" % hi
            if klo < khi:
                env.range_delete(META, klo, khi)
                for dead in [kk for kk in model if klo <= kk < khi]:
                    del model[dead]
        else:  # patch
            env.patch(META, k, y % 8, b"PP")
            base = model.get(k, b"")
            end = (y % 8) + 2
            if len(base) < end:
                base = base + b"\x00" * (end - len(base))
            model[k] = base[: y % 8] + b"PP" + base[end:]
    rows = dict(env.range_query(META, b"", b"\xff" * 8))
    assert rows == model
    for k, v in model.items():
        assert env.get(META, k) == v
