"""Unit and property tests for B-epsilon-tree nodes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import Delete, Insert, PageFrame, Patch, RangeDelete
from repro.core.node import BasementNode, InternalNode, LeafNode


class TestBasementNode:
    def test_set_get(self):
        b = BasementNode()
        b.set(b"k1", b"v1", msn=1)
        assert b.get(b"k1") == (True, b"v1")
        assert b.get(b"nope") == (False, None)

    def test_overwrite_updates_msn_and_size(self):
        b = BasementNode()
        b.set(b"k", b"short", msn=1)
        size1 = b.nbytes
        b.set(b"k", b"much longer value", msn=2)
        assert b.nbytes > size1
        assert b.get_with_msn(b"k") == (True, b"much longer value", 2)

    def test_remove(self):
        b = BasementNode()
        b.set(b"k", b"v", msn=1)
        assert b.remove(b"k")
        assert not b.remove(b"k")
        assert b.nbytes == 0

    def test_remove_range_respects_msn(self):
        b = BasementNode()
        b.set(b"a", b"1", msn=1)
        b.set(b"b", b"2", msn=9)
        b.set(b"c", b"3", msn=2)
        removed = b.remove_range(b"a", b"z", before_msn=5)
        assert removed == 2
        assert b.get(b"b") == (True, b"2")  # newer than the range delete

    def test_stale_message_is_noop(self):
        b = BasementNode()
        b.set(b"k", b"new", msn=10)
        applied = b.apply(Insert(b"k", b"old", msn=5))
        assert not applied
        assert b.get(b"k") == (True, b"new")

    def test_page_frame_refcounts_on_replace(self):
        b = BasementNode()
        f1, f2 = PageFrame(b"1" * 4096), PageFrame(b"2" * 4096)
        b.set(b"k", f1, msn=1)
        b.set(b"k", f2, msn=2)
        assert f1.refs == 0  # released when replaced

    def test_split_preserves_order_and_sizes(self):
        b = BasementNode()
        for i in range(10):
            b.set(f"k{i:02d}".encode(), b"v", msn=i)
        total = b.nbytes
        right = b.split()
        assert len(b) == 5 and len(right) == 5
        assert b.nbytes + right.nbytes == total
        assert b.last_key() < right.first_key()
        assert list(right.msns) == [5, 6, 7, 8, 9]

    def test_patch_apply(self):
        b = BasementNode()
        b.set(b"k", b"abcdef", msn=1)
        b.apply(Patch(b"k", 2, b"XX", msn=2))
        assert b.get(b"k") == (True, b"abXXef")


class TestLeafNode:
    def make_leaf(self, n=20):
        leaf = LeafNode(1)
        for i in range(n):
            leaf.apply(Insert(f"k{i:03d}".encode(), b"v" * 50, msn=i + 1), 256)
        return leaf

    def test_basement_splits_on_size(self):
        leaf = self.make_leaf(20)
        assert len(leaf.basements) > 1
        # Ordering across basements.
        firsts = [b.first_key() for b in leaf.basements]
        assert firsts == sorted(firsts)

    def test_get_routes_to_right_basement(self):
        leaf = self.make_leaf(30)
        for i in range(30):
            present, v = leaf.get(f"k{i:03d}".encode())
            assert present

    def test_range_delete_and_prune(self):
        leaf = self.make_leaf(30)
        removed = leaf.apply_range_delete(RangeDelete(b"k000", b"k015", msn=99))
        assert removed == 15
        leaf.prune_empty_basements()
        assert leaf.pair_count() == 15
        assert leaf.get(b"k014") == (False, None)
        assert leaf.get(b"k015")[0]

    def test_empty_basements_do_not_break_search(self):
        leaf = self.make_leaf(30)
        # Delete a middle run, emptying at least one basement.
        for i in range(8, 16):
            leaf.apply(Delete(f"k{i:03d}".encode(), msn=100 + i), 256)
        assert leaf.get(b"k020")[0]
        assert leaf.get(b"k004")[0]

    def test_leaf_split(self):
        leaf = self.make_leaf(40)
        right, pivot = leaf.split(2)
        assert right.first_key() == pivot
        assert leaf.last_key() < pivot
        assert leaf.pair_count() + right.pair_count() == 40

    def test_items_sorted(self):
        leaf = self.make_leaf(25)
        items = [k for k, _ in leaf.items()]
        assert items == sorted(items)


class TestInternalNode:
    def make(self):
        node = InternalNode(1, height=1)
        node.pivots = [b"g", b"p"]
        node.children = [10, 11, 12]
        return node

    def test_child_routing(self):
        node = self.make()
        assert node.child_index_for(b"a") == 0
        assert node.child_index_for(b"g") == 1  # pivot routes right
        assert node.child_index_for(b"m") == 1
        assert node.child_index_for(b"z") == 2

    def test_child_range(self):
        node = self.make()
        assert node.child_range(0) == (None, b"g")
        assert node.child_range(1) == (b"g", b"p")
        assert node.child_range(2) == (b"p", None)

    def test_enqueue_and_indexes(self):
        node = self.make()
        node.enqueue(Insert(b"a", b"1", msn=1))
        node.enqueue(Delete(b"a", msn=2))
        node.enqueue(RangeDelete(b"a", b"c", msn=3))
        assert node.buffer_bytes > 0
        pend = node.pending_for_key(b"a")
        assert len(pend) == 3
        assert node.pending_for_key(b"x") == []

    def test_point_keys_in_range(self):
        node = self.make()
        for k in (b"a", b"c", b"e", b"g"):
            node.enqueue(Insert(k, b"v", msn=1))
        assert node.point_keys_in_range(b"b", b"f") == [b"c", b"e"]
        assert node.point_keys_in_range(None, None) == [b"a", b"c", b"e", b"g"]

    def test_remove_messages_reindexes(self):
        node = self.make()
        m1 = Insert(b"a", b"1", msn=1)
        m2 = Insert(b"b", b"2", msn=2)
        node.enqueue(m1)
        node.enqueue(m2)
        node.remove_messages([m1], release=False)
        assert node.pending_for_key(b"a") == []
        assert node.pending_for_key(b"b") == [m2]
        assert node.buffer_bytes == m2.nbytes()

    def test_fattest_child(self):
        node = self.make()
        node.enqueue(Insert(b"a", b"small", msn=1))
        node.enqueue(Insert(b"m", b"x" * 500, msn=2))
        assert node.fattest_child() == 1

    def test_messages_for_child_includes_overlapping_ranges(self):
        node = self.make()
        rd = RangeDelete(b"e", b"r", msn=1)  # spans children 0,1,2
        node.enqueue(rd)
        for idx in range(3):
            assert rd in node.messages_for_child(idx)

    def test_split_partitions_buffer(self):
        node = InternalNode(1, height=1)
        node.pivots = [b"c", b"f", b"j"]
        node.children = [1, 2, 3, 4]
        node.enqueue(Insert(b"a", b"1", msn=1))
        node.enqueue(Insert(b"k", b"2", msn=2))
        node.enqueue(RangeDelete(b"b", b"z", msn=3))
        right, pivot = node.split(99)
        assert pivot == b"f"
        # Left keeps 'a'; right keeps 'k'; the range delete is clipped
        # into both halves.
        assert node.pending_for_key(b"a")
        assert right.pending_for_key(b"k")
        assert any(m.is_range for m in node.buffer)
        assert any(m.is_range for m in right.buffer)
        for m in node.buffer:
            if m.is_range:
                assert m.end <= pivot
        for m in right.buffer:
            if m.is_range:
                assert m.start >= pivot


# ----------------------------------------------------------------------
# Property: a basement behaves like a sorted dict under random ops.
# ----------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "remove", "remove_range"]),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=60,
)


@settings(max_examples=60)
@given(ops)
def test_basement_matches_model(op_list):
    b = BasementNode()
    model = {}
    msn = 0
    for op, x, y in op_list:
        msn += 1
        kx = f"k{x:02d}".encode()
        if op == "set":
            b.set(kx, b"v%d" % y, msn=msn)
            model[kx] = b"v%d" % y
        elif op == "remove":
            b.remove(kx)
            model.pop(kx, None)
        else:
            lo, hi = sorted((x, y))
            klo, khi = f"k{lo:02d}".encode(), f"k{hi:02d}".encode()
            b.remove_range(klo, khi)
            for k in [k for k in model if klo <= k < khi]:
                del model[k]
    assert dict(b.items()) == model
    assert list(b.keys) == sorted(model)
