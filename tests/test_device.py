"""Unit tests for the simulated block device and extent store."""

import pytest

from repro.device.block import BlockDevice, ExtentStore
from repro.device.clock import SimClock
from repro.model.profiles import COMMODITY_HDD, COMMODITY_SSD, NULL_DEVICE


class TestExtentStore:
    def test_roundtrip(self):
        store = ExtentStore()
        store.write(0, b"hello")
        assert store.read(0, 5) == b"hello"

    def test_holes_read_as_zero(self):
        store = ExtentStore()
        store.write(10, b"xy")
        assert store.read(8, 6) == b"\x00\x00xy\x00\x00"

    def test_overwrite_exact(self):
        store = ExtentStore()
        store.write(0, b"aaaa")
        store.write(0, b"bbbb")
        assert store.read(0, 4) == b"bbbb"

    def test_overwrite_partial_head(self):
        store = ExtentStore()
        store.write(0, b"aaaaaaaa")
        store.write(0, b"bb")
        assert store.read(0, 8) == b"bbaaaaaa"

    def test_overwrite_partial_tail(self):
        store = ExtentStore()
        store.write(0, b"aaaaaaaa")
        store.write(6, b"bb")
        assert store.read(0, 8) == b"aaaaaabb"

    def test_overwrite_middle_splits(self):
        store = ExtentStore()
        store.write(0, b"aaaaaaaa")
        store.write(3, b"bb")
        assert store.read(0, 8) == b"aaabbaaa"
        assert store.extent_count() == 3

    def test_write_spanning_multiple_extents(self):
        store = ExtentStore()
        store.write(0, b"aa")
        store.write(4, b"bb")
        store.write(8, b"cc")
        store.write(1, b"zzzzzzzz")
        assert store.read(0, 10) == b"azzzzzzzzc"

    def test_read_assembles_across_extents(self):
        store = ExtentStore()
        store.write(0, b"ab")
        store.write(2, b"cd")
        assert store.read(0, 4) == b"abcd"

    def test_discard(self):
        store = ExtentStore()
        store.write(0, b"abcdef")
        store.discard(2, 2)
        assert store.read(0, 6) == b"ab\x00\x00ef"

    def test_stored_bytes(self):
        store = ExtentStore()
        store.write(0, b"abc")
        store.write(100, b"de")
        assert store.stored_bytes() == 5

    def test_empty_read(self):
        store = ExtentStore()
        assert store.read(5, 0) == b""
        assert store.read(0, 4) == b"\x00" * 4


class TestBlockDeviceTiming:
    def make(self, profile=COMMODITY_SSD):
        clock = SimClock()
        return BlockDevice(clock, profile), clock

    def test_sequential_write_is_bandwidth_bound(self):
        dev, clock = self.make()
        data = b"x" * (1 << 20)
        for i in range(8):
            dev.write(i * len(data), data)
        # 8 MiB at ~502 MB/s (inside the write cache) ~ 16.7 ms.
        assert 0.010 < clock.now < 0.030

    def test_random_writes_pay_latency(self):
        dev, clock = self.make()
        for i in range(10):
            dev.write(i * (1 << 24), b"y" * 4096)
        assert clock.now >= 10 * COMMODITY_SSD.rand_write_lat

    def test_write_cache_cliff(self):
        from repro.model.profiles import scaled_profile

        profile = scaled_profile(COMMODITY_SSD, 1.0 / 4096.0)  # ~3 MiB cache
        dev, clock = self.make(profile)
        chunk = b"z" * (1 << 20)
        t0 = clock.now
        dev.write(0, chunk)
        fast = clock.now - t0
        # The cache fills at the *difference* between burst and drain
        # rates, so saturating ~3 MiB of cache takes ~15 MiB of stream.
        for i in range(1, 24):
            dev.write(i * len(chunk), chunk)
        t0 = clock.now
        dev.write(24 * len(chunk), chunk)
        slow = clock.now - t0
        assert slow > fast

    def test_multi_stream_sequential_detection(self):
        dev, clock = self.make()
        # Two interleaved append streams must both count as sequential.
        a, b = 0, 1 << 30
        for i in range(4):
            dev.write(a, b"p" * 4096)
            a += 4096
            dev.write(b, b"q" * 4096)
            b += 4096
        assert dev.stats.seq_writes >= 6  # all but the two stream heads

    def test_async_read_overlaps_cpu(self):
        dev, clock = self.make()
        dev.write(0, b"d" * (4 << 20))
        completion = dev.submit_read(0, 4 << 20)
        # CPU work while the device transfers.
        clock.cpu(0.004)
        t0 = clock.now
        dev.wait(completion)
        stall = clock.now - t0
        # Most of the ~7 ms transfer was hidden behind the 4 ms of CPU.
        assert stall < 0.006

    def test_flush_advances_clock(self):
        dev, clock = self.make()
        dev.write(0, b"x" * 4096)
        t0 = clock.now
        dev.flush()
        assert clock.now > t0
        assert dev.stats.flushes == 1

    def test_null_device_is_free(self):
        dev, clock = self.make(NULL_DEVICE)
        dev.write(0, b"x" * (1 << 20))
        dev.read(0, 1 << 20)
        assert clock.now < 1e-9

    def test_hdd_seeks_dominate(self):
        dev, clock = self.make(COMMODITY_HDD)
        for i in range(5):
            dev.write(i * (1 << 26), b"x" * 4096)
        assert clock.now >= 5 * COMMODITY_HDD.rand_write_lat

    def test_crash_image_preserves_bytes(self):
        dev, _clock = self.make()
        dev.write(123, b"persisted")
        twin = dev.crash_image()
        assert twin.store.read(123, 9) == b"persisted"
        # The image is independent.
        twin.store.write(123, b"xxxxxxxxx")
        assert dev.store.read(123, 9) == b"persisted"

    def test_stats_accounting(self):
        dev, _ = self.make()
        dev.write(0, b"x" * 4096)
        dev.read(0, 4096)
        s = dev.stats
        assert s.writes == 1 and s.reads == 1
        assert s.bytes_written == 4096 and s.bytes_read == 4096
        snap = s.snapshot()
        dev.read(4096, 4096)
        delta = s.delta(snap)
        assert delta.reads == 1 and delta.writes == 0
